// Incremental updates under live traffic: POST /v1/admin/update takes
// an NDJSON stream of graph delta operations, stages them against the
// serving generation's graph, and swaps in a model produced by
// shine.Model.WithDelta — CSR splice, warm-started PageRank and
// per-entity cache invalidation instead of a full rebuild. The
// endpoint shares Reload's single-flight lock (one structural change
// at a time, the loser gets 409) and its failure semantics: any error
// leaves the old generation serving untouched.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"shine/internal/hin"
	"shine/internal/obs"
	"shine/internal/shine"
)

// Delta metric names, all in the shared registry.
const (
	// MetricDeltaMerges counts successfully applied delta batches.
	MetricDeltaMerges = "shine_hin_delta_merges_total"
	// MetricDeltaEdges counts edges added across all applied deltas.
	MetricDeltaEdges = "shine_hin_delta_edges_total"
	// MetricDeltaMergeSeconds is the CSR splice wall time of the most
	// recent applied delta.
	MetricDeltaMergeSeconds = "shine_hin_delta_merge_seconds"
	// MetricDeltaFailures counts update requests that failed after
	// parsing (merge or model errors); the old generation kept serving.
	MetricDeltaFailures = "shine_hin_delta_failures_total"
)

type deltaMetrics struct {
	merges       *obs.Counter
	edges        *obs.Counter
	mergeSeconds *obs.Gauge
	failures     *obs.Counter
}

func newDeltaMetrics(reg *obs.Registry) *deltaMetrics {
	return &deltaMetrics{
		merges:       reg.Counter(MetricDeltaMerges),
		edges:        reg.Counter(MetricDeltaEdges),
		mergeSeconds: reg.Gauge(MetricDeltaMergeSeconds),
		failures:     reg.Counter(MetricDeltaFailures),
	}
}

// updateOp is one NDJSON line of a delta batch. Two shapes:
//
//	{"op":"object","type":"paper","name":"p-9"}
//	{"op":"edge","rel":"write","src":{"type":"author","name":"A"},"dst":{"type":"paper","name":"p-9"}}
//
// Objects and edges resolve by (type, name); an edge may reference
// objects staged earlier in the same batch, and staging an object
// that already exists resolves to it instead of erroring, so batches
// are idempotent at the object level.
type updateOp struct {
	Op   string     `json:"op"`
	Type string     `json:"type,omitempty"`
	Name string     `json:"name,omitempty"`
	Rel  string     `json:"rel,omitempty"`
	Src  *updateRef `json:"src,omitempty"`
	Dst  *updateRef `json:"dst,omitempty"`
}

type updateRef struct {
	Type string `json:"type"`
	Name string `json:"name"`
}

// parseDelta reads the whole NDJSON body and stages every operation
// against g, all-or-nothing: the first bad line aborts with its line
// number and nothing is applied. The returned delta has not been
// merged yet.
func parseDelta(g *hin.Graph, r io.Reader, maxLine int64) (*hin.Delta, error) {
	d := g.Append()
	br := bufio.NewReader(r)
	for lineNo := 1; ; lineNo++ {
		line, err := readBatchLine(br, maxLine)
		if err == io.EOF {
			break
		}
		if errors.Is(err, errLineTooLong) {
			return nil, fmt.Errorf("line %d: exceeds %d bytes", lineNo, maxLine)
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: reading body: %w", lineNo, err)
		}
		if len(line) == 0 || len(trimSpace(line)) == 0 {
			continue
		}
		if err := stageOp(g, d, line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return d, nil
}

// trimSpace is bytes.TrimSpace without the import weight; NDJSON
// lines only ever carry ASCII whitespace.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// stageOp parses and stages one delta line.
func stageOp(g *hin.Graph, d *hin.Delta, line []byte) error {
	dec := json.NewDecoder(newByteReader(line))
	dec.DisallowUnknownFields()
	var op updateOp
	if err := dec.Decode(&op); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if dec.More() {
		return errors.New("trailing data after the JSON object")
	}
	schema := g.Schema()
	switch op.Op {
	case "object":
		if op.Name == "" {
			return errors.New("object op needs a name")
		}
		typ, ok := schema.TypeByName(op.Type)
		if !ok {
			return fmt.Errorf("unknown object type %q", op.Type)
		}
		_, err := d.Append(typ, op.Name)
		return err
	case "edge":
		if op.Src == nil || op.Dst == nil {
			return errors.New("edge op needs src and dst")
		}
		rel, ok := schema.RelationByName(op.Rel)
		if !ok {
			return fmt.Errorf("unknown relation %q", op.Rel)
		}
		src, err := resolveRef(schema, d, op.Src)
		if err != nil {
			return fmt.Errorf("src: %w", err)
		}
		dst, err := resolveRef(schema, d, op.Dst)
		if err != nil {
			return fmt.Errorf("dst: %w", err)
		}
		return d.Patch(rel, src, dst)
	default:
		return fmt.Errorf("unknown op %q (want \"object\" or \"edge\")", op.Op)
	}
}

func resolveRef(schema *hin.Schema, d *hin.Delta, ref *updateRef) (hin.ObjectID, error) {
	typ, ok := schema.TypeByName(ref.Type)
	if !ok {
		return 0, fmt.Errorf("unknown object type %q", ref.Type)
	}
	id, ok := d.Lookup(typ, ref.Name)
	if !ok {
		return 0, fmt.Errorf("no %s object named %q (stage it with an object op first)", ref.Type, ref.Name)
	}
	return id, nil
}

// newByteReader avoids bytes.NewReader's interface allocation churn in
// the line loop — a plain io.Reader over one slice.
func newByteReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// updateResponse is the body of a successful POST /v1/admin/update.
type updateResponse struct {
	Status string            `json:"status"`
	Stats  shine.UpdateStats `json:"stats"`
}

// Update applies one staged delta batch read from r to the serving
// generation. It shares the reload single-flight lock: a concurrent
// Reload or Update returns errReloadInFlight (409 over HTTP). The
// body is parsed in full before anything happens — a malformed batch
// changes nothing — and a failure in the merge or model refresh
// leaves the old generation serving, with the failure counter
// incremented.
func (s *Server) Update(r io.Reader) (shine.UpdateStats, error) {
	var zero shine.UpdateStats
	if !s.reloadMu.TryLock() {
		return zero, errReloadInFlight
	}
	defer s.reloadMu.Unlock()

	sv := s.serving.Load()
	delta, err := parseDelta(sv.model.Graph(), r, s.maxLineBytes)
	if err != nil {
		return zero, fmt.Errorf("%w: %v", errBadDelta, err)
	}
	if delta.Empty() {
		return zero, fmt.Errorf("%w: batch stages no operations", errBadDelta)
	}

	start := time.Now()
	m2, stats, err := sv.model.WithDelta(delta)
	if err != nil {
		s.delta.failures.Inc()
		return zero, err
	}
	if s.precompute {
		if err := m2.PrecomputeMixtures(); err != nil {
			s.delta.failures.Inc()
			return zero, fmt.Errorf("server: precomputing mixtures: %w", err)
		}
	}
	nsv, err := buildServing(m2, s.ingestCfg, s.entityTypeOpt, s.minPosterior, sv.snapInfo)
	if err != nil {
		s.delta.failures.Inc()
		return zero, err
	}

	// Same swap dance as Reload: readiness drops for the instant
	// between unhooking the old generation's collectors and storing
	// the new one; admitted requests finish on the generation they
	// loaded.
	s.SetReady(false)
	sv.model.UnregisterCollectors(s.metrics)
	m2.SetMetrics(s.metrics)
	s.serving.Store(nsv)
	s.SetReady(true)

	s.delta.merges.Inc()
	s.delta.edges.Add(uint64(stats.NewEdges))
	s.delta.mergeSeconds.Set(stats.MergeSeconds)
	if s.logger != nil {
		s.logger.Printf("delta update: +%d objects +%d edges, %d/%d objects affected, kept %d mixtures / %d walks (%.3fs total)",
			stats.NewObjects, stats.NewEdges, stats.AffectedObjects, m2.Graph().NumObjects(),
			stats.MixturesKept, stats.WalkEntriesKept, time.Since(start).Seconds())
	}
	return stats, nil
}

// errBadDelta marks an update rejected at parse time; handleUpdate
// maps it to 400.
var errBadDelta = errors.New("server: invalid delta batch")

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	stats, err := s.Update(http.MaxBytesReader(w, r.Body, s.maxUpdateBytes))
	if err != nil {
		var maxErr *http.MaxBytesError
		switch {
		case err == errReloadInFlight:
			httpError(w, http.StatusConflict, err.Error())
		case errors.As(err, &maxErr):
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("update body exceeds %d bytes", maxErr.Limit))
		case errors.Is(err, errBadDelta):
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.writeJSON(w, updateResponse{Status: "updated", Stats: stats})
}
