package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"shine/internal/obs"
	"shine/internal/shine"
)

func do(s *Server, method, target, body string) *httptest.ResponseRecorder {
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

func TestMethodEnforcement(t *testing.T) {
	s, _ := testServer(t, Options{})
	cases := []struct {
		path    string
		allowed string // the one accepted method
	}{
		{"/v1/link", http.MethodPost},
		{"/v1/annotate", http.MethodPost},
		{"/v1/explain", http.MethodPost},
		{"/v1/candidates", http.MethodGet},
		{"/v1/entity", http.MethodGet},
		{"/v1/healthz", http.MethodGet},
		{"/v1/readyz", http.MethodGet},
		{"/v1/admin/update", http.MethodPost},
		{"/metrics", http.MethodGet},
	}
	methods := []string{
		http.MethodGet, http.MethodPost, http.MethodPut,
		http.MethodDelete, http.MethodPatch, http.MethodHead,
	}
	for _, tc := range cases {
		for _, method := range methods {
			t.Run(method+" "+tc.path, func(t *testing.T) {
				w := do(s, method, tc.path, "")
				if method == tc.allowed {
					if w.Code == http.StatusMethodNotAllowed {
						t.Errorf("%s %s rejected with 405", method, tc.path)
					}
					return
				}
				if w.Code != http.StatusMethodNotAllowed {
					t.Errorf("%s %s = %d, want 405", method, tc.path, w.Code)
				}
				if allow := w.Header().Get("Allow"); allow != tc.allowed {
					t.Errorf("%s %s Allow = %q, want %q", method, tc.path, allow, tc.allowed)
				}
			})
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := testServer(t, Options{})
	// Generate some traffic first.
	postJSON(t, s, "/v1/link",
		`{"mention": "Wei Wang", "text": "Wei Wang works on data at SIGMOD"}`)
	do(s, http.MethodGet, "/v1/healthz", "")

	w := do(s, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		`shine_http_requests_total{code="2xx",endpoint="/v1/link"} 1`,
		`shine_http_requests_total{code="2xx",endpoint="/v1/healthz"} 1`,
		`shine_http_request_seconds_bucket{endpoint="/v1/link",le="+Inf"} 1`,
		"# TYPE shine_http_request_seconds histogram",
		"shine_link_total 1",
		"shine_link_seconds_count 1",
		"shine_walker_cache_hits_total",
		"shine_walker_cache_misses_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestMetricsEndpointDisabled(t *testing.T) {
	s, _ := testServer(t, Options{NoMetricsEndpoint: true})
	if w := do(s, http.MethodGet, "/metrics", ""); w.Code != http.StatusNotFound {
		t.Errorf("GET /metrics with NoMetricsEndpoint = %d, want 404", w.Code)
	}
	// Instrumentation still runs on the private registry.
	do(s, http.MethodGet, "/v1/healthz", "")
	got := s.Metrics().Counter(obs.MetricHTTPRequests,
		"endpoint", "/v1/healthz", "code", "2xx").Value()
	if got != 1 {
		t.Errorf("healthz counter = %d, want 1", got)
	}
}

func TestSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("preexisting_total").Inc()
	s, _ := testServer(t, Options{Metrics: reg})
	if s.Metrics() != reg {
		t.Fatal("server did not adopt the provided registry")
	}
	w := do(s, http.MethodGet, "/metrics", "")
	if !strings.Contains(w.Body.String(), "preexisting_total 1") {
		t.Error("caller-owned metrics missing from exposition")
	}
}

func TestPprofMounting(t *testing.T) {
	s, _ := testServer(t, Options{Pprof: true})
	w := do(s, http.MethodGet, "/debug/pprof/", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "goroutine") {
		t.Errorf("pprof index = %d %q", w.Code, w.Body.String()[:min(80, w.Body.Len())])
	}
	w = do(s, http.MethodGet, "/debug/pprof/cmdline", "")
	if w.Code != http.StatusOK {
		t.Errorf("pprof cmdline = %d", w.Code)
	}

	off, _ := testServer(t, Options{})
	if w := do(off, http.MethodGet, "/debug/pprof/", ""); w.Code != http.StatusNotFound {
		t.Errorf("pprof without opt-in = %d, want 404", w.Code)
	}
}

// TestConcurrentRequestsMetricsReconcile hammers the server from many
// goroutines and asserts the metrics agree exactly with the requests
// sent — the accounting half of the subsystem's contract. Run under
// -race this also exercises every registry/middleware/model path for
// data races.
func TestConcurrentRequestsMetricsReconcile(t *testing.T) {
	s, _ := testServer(t, Options{})
	const workers = 8
	const perWorker = 6

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch (seed + i) % 3 {
				case 0:
					do(s, http.MethodPost, "/v1/link",
						`{"mention": "Wei Wang", "text": "Wei Wang works on data at SIGMOD"}`)
				case 1:
					do(s, http.MethodPost, "/v1/annotate",
						`{"text": "Wei Wang collaborates with Richard R. Muntz on data."}`)
				case 2:
					// Unknown mention: 404, a 4xx sample.
					do(s, http.MethodPost, "/v1/link",
						`{"mention": "Nobody Known", "text": "x"}`)
				}
			}
		}(w)
	}
	wg.Wait()

	total := workers * perWorker
	perKind := total / 3
	reg := s.Metrics()
	link2xx := reg.Counter(obs.MetricHTTPRequests, "endpoint", "/v1/link", "code", "2xx").Value()
	link4xx := reg.Counter(obs.MetricHTTPRequests, "endpoint", "/v1/link", "code", "4xx").Value()
	ann2xx := reg.Counter(obs.MetricHTTPRequests, "endpoint", "/v1/annotate", "code", "2xx").Value()
	if link2xx != uint64(perKind) {
		t.Errorf("link 2xx = %d, want %d", link2xx, perKind)
	}
	if link4xx != uint64(perKind) {
		t.Errorf("link 4xx = %d, want %d", link4xx, perKind)
	}
	if ann2xx != uint64(perKind) {
		t.Errorf("annotate 2xx = %d, want %d", ann2xx, perKind)
	}
	if got := reg.Histogram(obs.MetricHTTPRequestSeconds, nil, "endpoint", "/v1/link").Count(); got != uint64(2*perKind) {
		t.Errorf("link latency observations = %d, want %d", got, 2*perKind)
	}
	if got := reg.Gauge(obs.MetricHTTPInFlight).Value(); got != 0 {
		t.Errorf("in-flight after drain = %v, want 0", got)
	}
	// Model-level counters: every /v1/link call links once; annotate
	// links once per detected mention (>= 1), so the model total is at
	// least the HTTP link traffic.
	if got := reg.Counter(shine.MetricLinkTotal).Value(); got < uint64(2*perKind) {
		t.Errorf("model link total = %d, want >= %d", got, 2*perKind)
	}
	if got := reg.Counter(shine.MetricLinkFailures).Value(); got != uint64(perKind) {
		t.Errorf("model link failures = %d, want %d", got, perKind)
	}

	// The exposition itself must carry the same numbers.
	w := do(s, http.MethodGet, "/metrics", "")
	if !strings.Contains(w.Body.String(),
		fmt.Sprintf(`shine_http_requests_total{code="2xx",endpoint="/v1/link"} %d`, perKind)) {
		t.Error("exposition disagrees with counter value")
	}
}
