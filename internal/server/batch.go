// Streaming batch linking: POST /v1/link/batch pipes an NDJSON
// document stream through the model's LinkStream worker pool and
// flushes one NDJSON result line per completed document. Memory is
// bounded by the pipeline window, not the job size — the endpoint a
// million-document annotation job points at, where per-document
// round-trips through POST /v1/link are a non-starter.
//
// Protocol. Request body: one JSON object per line,
//
//	{"id": "doc-1", "mention": "Wei Wang", "text": "..."}
//
// (id optional; blank lines skipped). Response body
// (application/x-ndjson): one line per input line, in input order,
//
//	{"seq": 0, "id": "doc-1", "entity": 17, "name": "...", "posterior": 0.93}
//	{"seq": 1, "id": "doc-2", "error": "no candidates for \"X\""}
//
// followed by exactly one summary trailer once the stream completes:
//
//	{"summary": {"docs": 2, "failures": 1, "seconds": 0.04}}
//
// A line that fails to parse produces a per-line error record in
// position — it never aborts the batch. A single line larger than
// MaxLineBytes is a 413 when it is the first line (nothing committed
// yet) and a per-line error record afterwards. The endpoint runs
// under the full request lifecycle: the per-request deadline and the
// admission semaphore apply to the whole batch, panics become 500s,
// and a client disconnect mid-stream cancels the pipeline (counted in
// shine_requests_canceled_total). A response with no trailer means
// the stream was cut short — deadline, disconnect or shutdown.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"shine/internal/corpus"
	"shine/internal/hin"
)

// errLineTooLong marks an NDJSON input line exceeding MaxLineBytes.
var errLineTooLong = errors.New("line exceeds the per-line size limit")

// batchLine is one parsed NDJSON request line.
type batchLine struct {
	// ID is echoed back on the document's result line; optional.
	ID string `json:"id"`
	// Mention is the surface form to resolve; required.
	Mention string `json:"mention"`
	// Text is the document context containing the mention.
	Text string `json:"text"`
}

// parseBatchLine decodes and validates one NDJSON request line. It is
// total: any byte slice yields either a usable batchLine or an error,
// never a panic — FuzzNDJSONLine holds it to that.
func parseBatchLine(line []byte) (batchLine, error) {
	var req batchLine
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return batchLine{}, fmt.Errorf("invalid JSON: %s", compactErr(err))
	}
	// A second document on the same line is a framing error the
	// caller should hear about, not silently half-process.
	if dec.More() {
		return batchLine{}, errors.New("invalid JSON: more than one document per line")
	}
	if req.Mention == "" {
		return batchLine{}, errors.New("mention is required")
	}
	return req, nil
}

// compactErr renders a JSON decode error on one line so it embeds
// cleanly in an NDJSON error record.
func compactErr(err error) string {
	return string(bytes.ReplaceAll([]byte(err.Error()), []byte("\n"), []byte(" ")))
}

// readBatchLine reads the next newline-terminated line from br,
// enforcing the per-line byte limit. Oversized lines are consumed to
// their terminating newline (so the stream can resync on the next
// line) and reported as errLineTooLong. io.EOF terminates a final
// unterminated line gracefully.
func readBatchLine(br *bufio.Reader, limit int64) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		if int64(len(line)+len(chunk)) > limit {
			// Discard the remainder of this line, then resync.
			for err == bufio.ErrBufferFull {
				_, err = br.ReadSlice('\n')
			}
			if err != nil && err != bufio.ErrBufferFull && err != io.EOF {
				return nil, err
			}
			return nil, errLineTooLong
		}
		line = append(line, chunk...)
		switch err {
		case nil:
			return bytes.TrimSuffix(line, []byte("\n")), nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(line) == 0 {
				return nil, io.EOF
			}
			return line, nil
		default:
			return nil, err
		}
	}
}

// batchResultLine is one NDJSON response line. Exactly one of
// Entity/Error is meaningful: Error == "" is a link result, anything
// else is a per-line failure record.
type batchResultLine struct {
	Seq       int     `json:"seq"`
	ID        string  `json:"id,omitempty"`
	Entity    *int32  `json:"entity,omitempty"`
	Name      string  `json:"name,omitempty"`
	Posterior float64 `json:"posterior,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// batchSummary is the trailer carried on the final response line.
type batchSummary struct {
	// Docs is the number of input lines answered (results + error
	// records).
	Docs int `json:"docs"`
	// Failures counts error records: unparseable lines, oversized
	// lines and documents that failed to link.
	Failures int `json:"failures"`
	// Seconds is the batch wall time.
	Seconds float64 `json:"seconds"`
}

// lineMeta is what the parse goroutine records per line for the
// writer: the caller's id and, for lines that never reached the
// model, the error to report. Entries live only between parse and
// emission, so the table holds O(window) entries, not O(lines).
type lineMeta struct {
	id       string
	parseErr string
}

// batchMetaTable shares per-line metadata between the parser and
// writer goroutines.
type batchMetaTable struct {
	mu sync.Mutex
	m  map[int]lineMeta
}

func (t *batchMetaTable) put(seq int, meta lineMeta) {
	t.mu.Lock()
	t.m[seq] = meta
	t.mu.Unlock()
}

func (t *batchMetaTable) take(seq int) lineMeta {
	t.mu.Lock()
	meta := t.m[seq]
	delete(t.m, seq)
	t.mu.Unlock()
	return meta
}

func (s *Server) handleLinkBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sv := s.serving.Load()
	// Derive a cancel the handler owns: if the response loop bails
	// early (encode failure on a dead connection), the whole pipeline
	// unwinds immediately instead of waiting for the server to tear
	// the request context down.
	ctx, cancelPipeline := context.WithCancel(r.Context())
	defer cancelPipeline()
	// The batch protocol reads the request body while the response
	// streams — HTTP/1.x servers are half-duplex by default and close
	// the unread body at the first response write, truncating the
	// batch. Best-effort: recorders and HTTP/2 don't support it and
	// don't need it.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	br := bufio.NewReader(r.Body)
	reqID := s.nextRequestID()

	// Read the first line before committing a status: an empty body
	// or an oversized opening line still gets a proper 4xx, which is
	// impossible once streaming has started.
	first, err := readBatchLine(br, s.maxLineBytes)
	switch {
	case err == io.EOF:
		httpError(w, http.StatusBadRequest, "empty batch: request body has no lines")
		return
	case errors.Is(err, errLineTooLong):
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request line exceeds %d bytes", s.maxLineBytes))
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "reading request body: "+compactErr(err))
		return
	}

	meta := &batchMetaTable{m: make(map[int]lineMeta)}
	docs := make(chan *corpus.Document)

	// Parse goroutine: turn lines into documents in input order.
	// Unparseable and oversized lines flow through the pipeline as
	// nil documents so their error records come out in position.
	go func() {
		defer close(docs)
		line, err := first, error(nil)
		for seq := 0; ; {
			if len(bytes.TrimSpace(line)) > 0 {
				doc, m := s.parseBatchDoc(sv, reqID, seq, line, nil)
				meta.put(seq, m)
				select {
				case <-ctx.Done():
					return
				case docs <- doc:
				}
				seq++
			}
			line, err = readBatchLine(br, s.maxLineBytes)
			if err == io.EOF {
				return
			}
			if err != nil {
				doc, m := s.parseBatchDoc(sv, reqID, seq, nil, err)
				meta.put(seq, m)
				select {
				case <-ctx.Done():
					return
				case docs <- doc:
				}
				seq++
				line = nil
				if !errors.Is(err, errLineTooLong) {
					// The body itself failed mid-read (client went
					// away, TCP error); there are no further lines.
					return
				}
			}
		}
	}()

	out := sv.model.LinkStream(ctx, docs, s.batchWorkers)

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	sum := batchSummary{}
	wroteAny := false
	for sr := range out {
		m := meta.take(sr.Seq)
		line := batchResultLine{Seq: sr.Seq, ID: m.id}
		switch {
		case m.parseErr != "":
			line.Error = m.parseErr
			sum.Failures++
		case sr.Err != nil:
			line.Error = sr.Err.Error()
			sum.Failures++
		default:
			line.Entity = entityID(sr.Result.Entity)
			line.Name = entityName(sv, sr.Result.Entity)
			line.Posterior = sr.Result.Candidates[0].Posterior
		}
		if err := enc.Encode(line); err != nil {
			// The connection is gone; the pipeline unwinds through
			// ctx when the server tears the request down.
			break
		}
		wroteAny = true
		sum.Docs++
		_ = rc.Flush()
	}

	if err := ctx.Err(); err != nil {
		if !wroteAny {
			// Nothing committed: report the cancellation properly.
			s.respondCtxError(w, err)
			return
		}
		// Mid-stream: the status line is long gone, so the cut batch
		// is visible as a missing trailer. Count it like any other
		// canceled request — disconnect or deadline.
		s.lifecycle.canceled.Inc()
		return
	}
	sum.Seconds = time.Since(start).Seconds()
	trailer := struct {
		Summary batchSummary `json:"summary"`
	}{sum}
	if err := enc.Encode(trailer); err == nil {
		_ = rc.Flush()
	}
}

// parseBatchDoc converts one input line (or a line-level read error)
// into the pipeline's input: an ingested document for good lines, nil
// plus an error record for bad ones.
func (s *Server) parseBatchDoc(sv *serving, reqID string, seq int, line []byte, readErr error) (*corpus.Document, lineMeta) {
	if readErr != nil {
		if errors.Is(readErr, errLineTooLong) {
			return nil, lineMeta{parseErr: fmt.Sprintf("line exceeds %d bytes", s.maxLineBytes)}
		}
		return nil, lineMeta{parseErr: "reading request body: " + compactErr(readErr)}
	}
	req, err := parseBatchLine(line)
	if err != nil {
		return nil, lineMeta{parseErr: err.Error()}
	}
	// Internal document ids must be process-unique; the caller's id
	// is echoed from lineMeta instead.
	doc := sv.ingester.Ingest(fmt.Sprintf("%s-%d", reqID, seq), req.Mention, hin.NoObject, req.Text)
	return doc, lineMeta{id: req.ID}
}

