package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/shine"
)

// deltaBatch renders NDJSON staging one new paper wired into Wei Wang
// 0002's neighbourhood.
func deltaBatch(name string) string {
	return strings.Join([]string{
		fmt.Sprintf(`{"op":"object","type":"paper","name":%q}`, name),
		fmt.Sprintf(`{"op":"edge","rel":"write","src":{"type":"author","name":"Wei Wang 0002"},"dst":{"type":"paper","name":%q}}`, name),
		fmt.Sprintf(`{"op":"edge","rel":"publish","src":{"type":"venue","name":"NIPS"},"dst":{"type":"paper","name":%q}}`, name),
		"",
	}, "\n")
}

func TestUpdateEndpoint(t *testing.T) {
	s, _ := testServer(t, Options{})
	before := s.serving.Load()
	objsBefore := before.model.Graph().NumObjects()

	w := postJSON(t, s, "/v1/admin/update", deltaBatch("upd-p0"))
	if w.Code != http.StatusOK {
		t.Fatalf("update: status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Status string            `json:"status"`
		Stats  shine.UpdateStats `json:"stats"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding update response: %v", err)
	}
	if resp.Status != "updated" || resp.Stats.NewObjects != 1 || resp.Stats.NewEdges != 2 {
		t.Errorf("response = %+v, want 1 new object, 2 new edges", resp)
	}

	after := s.serving.Load()
	if after == before {
		t.Fatal("serving generation did not swap")
	}
	if got := after.model.Graph().NumObjects(); got != objsBefore+1 {
		t.Errorf("new generation has %d objects, want %d", got, objsBefore+1)
	}
	// The old generation is untouched — requests admitted before the
	// swap finish on a consistent graph.
	if got := before.model.Graph().NumObjects(); got != objsBefore {
		t.Errorf("old generation mutated: %d objects, want %d", got, objsBefore)
	}
	// Linking still works on the new generation.
	if w := postJSON(t, s, "/v1/link",
		`{"mention": "Wei Wang", "text": "data at SIGMOD with Richard R. Muntz"}`); w.Code != http.StatusOK {
		t.Errorf("link after update: status %d: %s", w.Code, w.Body.String())
	}
	// Metrics recorded the merge.
	if got := s.delta.merges.Value(); got != 1 {
		t.Errorf("merge counter = %v, want 1", got)
	}
	if got := s.delta.edges.Value(); got != 2 {
		t.Errorf("edge counter = %v, want 2", got)
	}
	if got := s.delta.failures.Value(); got != 0 {
		t.Errorf("failure counter = %v, want 0", got)
	}
	// The warm-iterations gauge appears in the exposition (PageRank
	// popularity is the default for testServer models).
	mw := do(s, http.MethodGet, "/metrics", "")
	if !strings.Contains(mw.Body.String(), shine.MetricPageRankWarmIterations) {
		t.Errorf("exposition missing %s", shine.MetricPageRankWarmIterations)
	}
}

func TestUpdateRejectsBadBatches(t *testing.T) {
	s, _ := testServer(t, Options{})
	before := s.serving.Load()
	cases := []struct {
		name, body string
	}{
		{"empty body", ""},
		{"blank lines only", "\n  \n"},
		{"invalid JSON", "{nope"},
		{"unknown op", `{"op":"vertex","type":"paper","name":"x"}`},
		{"unknown field", `{"op":"object","type":"paper","name":"x","bogus":1}`},
		{"unknown type", `{"op":"object","type":"gadget","name":"x"}`},
		{"missing name", `{"op":"object","type":"paper"}`},
		{"unknown relation", deltaBatch("x") + `{"op":"edge","rel":"likes","src":{"type":"author","name":"Wei Wang 0002"},"dst":{"type":"paper","name":"x"}}`},
		{"unresolved ref", `{"op":"edge","rel":"write","src":{"type":"author","name":"Nobody"},"dst":{"type":"paper","name":"w2p0"}}`},
		{"type mismatch", `{"op":"edge","rel":"write","src":{"type":"venue","name":"NIPS"},"dst":{"type":"paper","name":"w2p0"}}`},
		{"trailing data", `{"op":"object","type":"paper","name":"x"} extra`},
	}
	for _, tc := range cases {
		w := postJSON(t, s, "/v1/admin/update", tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body.String())
		}
	}
	if s.serving.Load() != before {
		t.Error("a rejected batch swapped the serving generation")
	}
	if got := s.delta.merges.Value(); got != 0 {
		t.Errorf("merge counter = %v after rejected batches, want 0", got)
	}
}

// TestUpdateConflict: update shares Reload's single-flight lock — a
// structural change already in flight turns a concurrent update away
// with 409, and vice versa.
func TestUpdateConflict(t *testing.T) {
	path, _ := writeTestSnapshot(t)
	s, _ := testServer(t, Options{SnapshotPath: path})
	s.reloadMu.Lock()
	w := postJSON(t, s, "/v1/admin/update", deltaBatch("c0"))
	if w.Code != http.StatusConflict {
		t.Errorf("update during reload: status %d, want 409: %s", w.Code, w.Body.String())
	}
	wr := postJSON(t, s, "/v1/admin/reload", "")
	if wr.Code != http.StatusConflict {
		t.Errorf("reload during update: status %d, want 409: %s", wr.Code, wr.Body.String())
	}
	s.reloadMu.Unlock()

	// Lock released: both proceed again.
	if w := postJSON(t, s, "/v1/admin/update", deltaBatch("c1")); w.Code != http.StatusOK {
		t.Errorf("update after unlock: status %d: %s", w.Code, w.Body.String())
	}
}

// uniformTestServer builds a server whose model uses uniform
// popularity — the configuration under which incremental updates are
// pinned bit-identical to cold rebuilds — and returns the base graph
// and corpus for the cold-rebuild comparison.
func uniformTestServer(t testing.TB) (*Server, *hin.DBLPSchema, *hin.Graph, *corpus.Corpus) {
	t.Helper()
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	w1 := b.MustAddObject(d.Author, "Wei Wang 0001")
	w2 := b.MustAddObject(d.Author, "Wei Wang 0002")
	muntz := b.MustAddObject(d.Author, "Richard R. Muntz")
	sigmod := b.MustAddObject(d.Venue, "SIGMOD")
	nips := b.MustAddObject(d.Venue, "NIPS")
	data := b.MustAddObject(d.Term, "data")
	neural := b.MustAddObject(d.Term, "neural")
	for i := 0; i < 4; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("w1p%d", i))
		b.MustAddLink(d.Write, w1, p)
		b.MustAddLink(d.Write, muntz, p)
		b.MustAddLink(d.Publish, sigmod, p)
		b.MustAddLink(d.Contain, p, data)
	}
	p := b.MustAddObject(d.Paper, "w2p0")
	b.MustAddLink(d.Write, w2, p)
	b.MustAddLink(d.Publish, nips, p)
	b.MustAddLink(d.Contain, p, neural)
	g := b.Build()

	c := &corpus.Corpus{}
	c.Add(corpus.NewDocument("s1", "Wei Wang", w1, []hin.ObjectID{muntz, sigmod, data}))
	c.Add(corpus.NewDocument("s2", "Wei Wang", w2, []hin.ObjectID{nips, neural}))
	cfg := shine.DefaultConfig()
	cfg.Popularity = shine.PopularityUniform
	m, err := shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, corpus.DBLPIngestConfig(d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, d, g, c
}

// TestUpdateUnderLoad drives 20 delta batches through the update
// endpoint while 8 concurrent linkers hammer /v1/link: no request may
// see a 5xx, and the final generation's posteriors must be
// bit-identical to a model cold-rebuilt over the same deltas — proof
// that no stale cache entry survived where it mattered.
func TestUpdateUnderLoad(t *testing.T) {
	s, d, g, c := uniformTestServer(t)

	const (
		linkers = 8
		batches = 20
	)
	var (
		stop     atomic.Bool
		non2xx   atomic.Int64
		linkWg   sync.WaitGroup
		linkBody = `{"mention": "Wei Wang", "text": "Wei Wang works on data at SIGMOD with Richard R. Muntz"}`
	)
	for i := 0; i < linkers; i++ {
		linkWg.Add(1)
		go func() {
			defer linkWg.Done()
			for !stop.Load() {
				w := postJSON(t, s, "/v1/link", linkBody)
				if w.Code >= 500 {
					non2xx.Add(1)
				}
			}
		}()
	}

	for i := 0; i < batches; i++ {
		w := postJSON(t, s, "/v1/admin/update", deltaBatch(fmt.Sprintf("load-p%d", i)))
		if w.Code != http.StatusOK {
			t.Fatalf("batch %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	stop.Store(true)
	linkWg.Wait()

	if n := non2xx.Load(); n != 0 {
		t.Errorf("%d link requests got 5xx during updates", n)
	}
	if got := s.delta.merges.Value(); got != batches {
		t.Errorf("merge counter = %v, want %d", got, batches)
	}

	// Cold rebuild over the same deltas, applied the same way.
	gCold := g
	for i := 0; i < batches; i++ {
		dl := gCold.Append()
		paper := dl.MustAppend(d.Paper, fmt.Sprintf("load-p%d", i))
		w2, _ := dl.Lookup(d.Author, "Wei Wang 0002")
		nips, _ := dl.Lookup(d.Venue, "NIPS")
		dl.MustPatch(d.Write, w2, paper)
		dl.MustPatch(d.Publish, nips, paper)
		var err error
		gCold, _, err = dl.Merge()
		if err != nil {
			t.Fatalf("cold merge %d: %v", i, err)
		}
	}
	cfg := shine.DefaultConfig()
	cfg.Popularity = shine.PopularityUniform
	mCold, err := shine.New(gCold, d.Author, metapath.DBLPPaperPaths(d), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mServing := s.serving.Load().model
	if got, want := mServing.Graph().NumObjects(), gCold.NumObjects(); got != want {
		t.Fatalf("serving graph has %d objects, cold has %d", got, want)
	}
	for _, doc := range c.Docs {
		inc, err := mServing.Link(doc)
		if err != nil {
			t.Fatalf("serving Link(%s): %v", doc.ID, err)
		}
		cold, err := mCold.Link(doc)
		if err != nil {
			t.Fatalf("cold Link(%s): %v", doc.ID, err)
		}
		if inc.Entity != cold.Entity || len(inc.Candidates) != len(cold.Candidates) {
			t.Fatalf("doc %s: serving linked %d (%d candidates), cold %d (%d)",
				doc.ID, inc.Entity, len(inc.Candidates), cold.Entity, len(cold.Candidates))
		}
		for i := range inc.Candidates {
			if math.Float64bits(inc.Candidates[i].Posterior) != math.Float64bits(cold.Candidates[i].Posterior) {
				t.Errorf("doc %s candidate %d: posterior %x != cold %x — a stale cache entry survived",
					doc.ID, i,
					math.Float64bits(inc.Candidates[i].Posterior),
					math.Float64bits(cold.Candidates[i].Posterior))
			}
		}
	}
}

// FuzzDeltaPatch holds the NDJSON delta parser to its contract: any
// line either errors out cleanly or stages operations that merge into
// a graph passing full validation, with the degree cache coherent.
func FuzzDeltaPatch(f *testing.F) {
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	a := b.MustAddObject(d.Author, "a0")
	v := b.MustAddObject(d.Venue, "v0")
	for i := 0; i < 3; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("p%d", i))
		b.MustAddLink(d.Write, a, p)
		b.MustAddLink(d.Publish, v, p)
	}
	g := b.Build()

	f.Add(`{"op":"object","type":"paper","name":"new-p"}`)
	f.Add(`{"op":"edge","rel":"write","src":{"type":"author","name":"a0"},"dst":{"type":"paper","name":"p0"}}`)
	f.Add(`{"op":"edge","rel":"writtenBy","src":{"type":"paper","name":"p1"},"dst":{"type":"author","name":"a0"}}`)
	f.Add(`{"op":"object","type":"gadget","name":"x"}`)
	f.Add(`{nope`)
	f.Add(`{"op":"object","type":"paper","name":"p0"}`)

	f.Fuzz(func(t *testing.T, line string) {
		delta := g.Append()
		if err := stageOp(g, delta, []byte(line)); err != nil {
			return // rejected lines must simply not stage anything
		}
		merged, stats, err := hin.MergeDeltas(g, delta)
		if err != nil {
			t.Fatalf("staged op failed to merge: %v\nline: %q", err, line)
		}
		if err := merged.Validate(); err != nil {
			t.Fatalf("merged graph invalid: %v\nline: %q", err, line)
		}
		if stats.NewObjects != delta.NumObjects() || stats.NewEdges != delta.NumEdges() {
			t.Fatalf("stats %+v disagree with delta (%d objects, %d edges)",
				stats, delta.NumObjects(), delta.NumEdges())
		}
		merged.TotalDegrees() // must not panic: degree cache sealed
	})
}
