package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

const linkBody = `{"mention": "Wei Wang", "text": "Wei Wang works on data at SIGMOD with Richard R. Muntz"}`

func TestRequestTimeout(t *testing.T) {
	// A deadline of 1ns has always expired by the time the handler
	// reaches the model, so the request deterministically times out.
	s, _ := testServer(t, Options{RequestTimeout: time.Nanosecond})
	w := postJSON(t, s, "/v1/link", linkBody)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request: status %d, want 503: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "timed out") {
		t.Errorf("503 body should mention the timeout: %s", w.Body.String())
	}
	if got := s.Metrics().Counter(MetricRequestsCanceled).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricRequestsCanceled, got)
	}
}

func TestClientDisconnect(t *testing.T) {
	s, _ := testServer(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/link", strings.NewReader(linkBody)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("canceled client: status %d, want %d: %s", w.Code, StatusClientClosedRequest, w.Body.String())
	}
	if got := s.Metrics().Counter(MetricRequestsCanceled).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricRequestsCanceled, got)
	}
}

func TestNegativeTimeoutRejected(t *testing.T) {
	m, cfg, _ := testModel(t)
	if _, err := New(m, cfg, Options{RequestTimeout: -time.Second}); err == nil {
		t.Error("negative RequestTimeout accepted")
	}
}

func TestPanicRecovery(t *testing.T) {
	s, _ := testServer(t, Options{})
	s.route(http.MethodGet, "/v1/panictest", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/panictest", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", w.Code)
	}
	if !strings.Contains(w.Body.String(), "internal server error") {
		t.Errorf("500 body = %s", w.Body.String())
	}
	if got := s.Metrics().Counter(MetricPanics).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricPanics, got)
	}
	// The server survives: the next request works.
	if w := postJSON(t, s, "/v1/link", linkBody); w.Code != http.StatusOK {
		t.Errorf("request after panic: status %d, want 200", w.Code)
	}
}

func TestPanicAfterHeadersStaysSilent(t *testing.T) {
	s, _ := testServer(t, Options{})
	s.route(http.MethodGet, "/v1/paniclate", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		panic("late boom")
	})
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/paniclate", nil))
	// The 200 is already on the wire; recovery must not stomp a second
	// status over the partial body.
	if w.Code != http.StatusOK {
		t.Errorf("late panic: recorded status %d, want the original 200", w.Code)
	}
	if got := s.Metrics().Counter(MetricPanics).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricPanics, got)
	}
}

func TestLoadShedding(t *testing.T) {
	s, _ := testServer(t, Options{MaxInFlight: 1, MaxQueued: -1, RequestTimeout: 30 * time.Second})
	started := make(chan struct{})
	release := make(chan struct{})
	s.route(http.MethodGet, "/v1/slowtest", s.guard(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		s.writeJSON(w, struct{}{})
	}))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/slowtest", nil))
	}()
	<-started

	// The slot is held and there is no queue: the next request sheds.
	w := postJSON(t, s, "/v1/link", linkBody)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("request over capacity: status %d, want 429: %s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra != "30" {
		t.Errorf("Retry-After = %q, want %q", ra, "30")
	}
	if got := s.Metrics().Counter(MetricRequestsShed).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricRequestsShed, got)
	}
	if got := s.Metrics().Gauge(MetricRequestsInFlight).Value(); got != 1 {
		t.Errorf("%s = %v, want 1", MetricRequestsInFlight, got)
	}

	close(release)
	wg.Wait()
	if got := s.Metrics().Gauge(MetricRequestsInFlight).Value(); got != 0 {
		t.Errorf("%s after release = %v, want 0", MetricRequestsInFlight, got)
	}

	// With the slot free again, requests flow.
	if w := postJSON(t, s, "/v1/link", linkBody); w.Code != http.StatusOK {
		t.Errorf("request after release: status %d, want 200", w.Code)
	}
}

func TestQueuedRequestProceeds(t *testing.T) {
	// MaxQueued defaults to MaxInFlight (1), so a second request waits
	// instead of shedding and completes once the slot frees.
	s, _ := testServer(t, Options{MaxInFlight: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	s.route(http.MethodGet, "/v1/slowtest", s.guard(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		s.writeJSON(w, struct{}{})
	}))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/slowtest", nil))
	}()
	<-started

	done := make(chan int, 1)
	go func() {
		w := postJSON(t, s, "/v1/link", linkBody)
		done <- w.Code
	}()
	// The queued request must not have been answered yet.
	select {
	case code := <-done:
		t.Fatalf("queued request answered %d before the slot freed", code)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Errorf("queued request: status %d, want 200", code)
	}
	wg.Wait()
}

func TestReadyz(t *testing.T) {
	s, _ := testServer(t, Options{})
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/readyz", nil))
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ready"`) {
		t.Errorf("readyz = %d %s, want 200 ready", w.Code, w.Body.String())
	}
	if got := s.Metrics().Gauge(MetricReady).Value(); got != 1 {
		t.Errorf("%s = %v, want 1", MetricReady, got)
	}

	s.SetReady(false)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/readyz", nil))
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), `"unavailable"`) {
		t.Errorf("readyz after SetReady(false) = %d %s, want 503 unavailable", w.Code, w.Body.String())
	}
	if got := s.Metrics().Gauge(MetricReady).Value(); got != 0 {
		t.Errorf("%s = %v, want 0", MetricReady, got)
	}

	// Liveness is independent of readiness.
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if w.Code != http.StatusOK {
		t.Errorf("healthz while not ready = %d, want 200", w.Code)
	}

	s.SetReady(true)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/readyz", nil))
	if w.Code != http.StatusOK {
		t.Errorf("readyz after SetReady(true) = %d, want 200", w.Code)
	}
}

func TestEntityIDParsing(t *testing.T) {
	s, ids := testServer(t, Options{})
	cases := []struct {
		id   string
		want int
	}{
		{"", http.StatusBadRequest},
		{"12abc", http.StatusBadRequest},         // Sscanf used to accept this as 12
		{"99999999999999999999", http.StatusBadRequest}, // overflows int32
		{"4294967297", http.StatusBadRequest},    // wraps to 1 under a naive cast
		{"-1", http.StatusNotFound},
		{"1000000", http.StatusNotFound},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/entity?id="+tc.id, nil))
		if w.Code != tc.want {
			t.Errorf("id=%q: status %d, want %d", tc.id, w.Code, tc.want)
		}
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet,
		"/v1/entity?id="+strconv.Itoa(int(ids["w1"])), nil))
	if w.Code != http.StatusOK {
		t.Errorf("valid id: status %d, want 200: %s", w.Code, w.Body.String())
	}
}

func TestUniqueRequestIDs(t *testing.T) {
	s, _ := testServer(t, Options{})
	a, b := s.nextRequestID(), s.nextRequestID()
	if a == b {
		t.Errorf("nextRequestID returned %q twice", a)
	}
}
