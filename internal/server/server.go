// Package server exposes a trained SHINE model over HTTP — the
// serving surface a deployment of the paper's system needs: linking
// single mentions, annotating raw text, explaining decisions and
// inspecting entities. JSON in, JSON out, stdlib only.
//
// Endpoints:
//
//	POST /v1/link[?nil_prior=P]  {"mention": "...", "text": "..."} -> linking result
//	POST /v1/link/batch  NDJSON stream of link requests         -> NDJSON result stream
//	POST /v1/annotate    {"text": "..."}                        -> annotations
//	POST /v1/explain     {"mention": "...", "text": "..."}      -> evidence breakdown
//	GET  /v1/candidates?mention=NAME[&loose=1|&fuzzy=1]         -> candidate entities
//	GET  /v1/entity?id=N                                        -> entity card
//	GET  /v1/healthz                                            -> liveness
//	GET  /v1/readyz                                             -> readiness
//	POST /v1/admin/reload                                       -> snapshot hot swap
//	POST /v1/admin/update  NDJSON stream of graph delta ops     -> incremental update
//	GET  /metrics                                               -> Prometheus exposition
//	GET  /debug/pprof/*                                         -> profiling (opt-in)
//
// Every endpoint accepts exactly one method; anything else is 405
// with an Allow header. Requests are instrumented per endpoint
// (counts by status class, in-flight gauge, latency histograms) into
// an obs.Registry, and the model's own link/EM/walker-cache metrics
// land in the same registry — one scrape shows the whole system.
//
// The /v1 model-serving endpoints run under a request lifecycle (see
// lifecycle.go): the client's context is threaded into the model so a
// disconnect or deadline aborts meta-path walk work mid-flight,
// Options.RequestTimeout bounds every request, Options.MaxInFlight
// sheds excess load with 429, and a panic in any handler becomes a
// 500 instead of a dead process.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"shine/internal/annotate"
	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/obs"
	"shine/internal/shine"
	"shine/internal/snapshot"
	"shine/internal/surftrie"
)

// serving is one immutable generation of the serving state: the
// model plus everything derived from its graph. Handlers load the
// whole bundle once per request from Server.serving, so a hot swap
// mid-request can never pair one generation's model with another's
// index — a request is served entirely by the generation it started
// on.
type serving struct {
	model     *shine.Model
	ingester  *corpus.Ingester
	annotator *annotate.Annotator
	// cands answers /v1/candidates — exact, loose (first-initial) and,
	// when the source supports it, fuzzy retrieval. Usually the
	// model's own trie; a separate index only when Options.EntityType
	// overrides the model's entity type.
	cands shine.CandidateSource
	// snapInfo identifies the snapshot artifact this generation was
	// loaded from; nil when the model was built in-process.
	snapInfo *snapshot.Info
}

// Server wires a model and its ingestion pipeline into an
// http.Handler. It is safe for concurrent requests, including
// concurrent hot swaps via Reload.
type Server struct {
	// serving is the current generation, swapped atomically by Reload.
	serving atomic.Pointer[serving]
	mux     *http.ServeMux
	// Rebuild inputs Reload needs to derive a fresh generation from a
	// new model: the ingestion config and the Options that shaped the
	// original bundle.
	ingestCfg    corpus.IngestConfig
	entityTypeOpt hin.TypeID
	minPosterior float64
	precompute   bool
	// fuzzyDistance is the serving-path fuzzy fallback distance; it is
	// reapplied to every hot-swapped model so -fuzzy survives reloads.
	fuzzyDistance int
	// snapshotPath, when set, is the artifact POST /v1/admin/reload
	// (and SIGHUP in the CLI) reloads from.
	snapshotPath string
	// reloadMu single-flights Reload; concurrent requests get a 409.
	reloadMu sync.Mutex
	// snap holds the shine_snapshot_* instruments; always non-nil.
	snap *snapshotMetrics
	// delta holds the shine_hin_delta_* instruments; always non-nil.
	delta *deltaMetrics
	// maxUpdateBytes bounds a whole /v1/admin/update body (per line it
	// is still maxLineBytes).
	maxUpdateBytes int64
	// maxBodyBytes bounds request bodies; documents are pages, not
	// uploads.
	maxBodyBytes int64
	// maxLineBytes bounds one NDJSON line on /v1/link/batch — the
	// batch body as a whole is unbounded by design.
	maxLineBytes int64
	// batchWorkers is the LinkStream fan-out width for /v1/link/batch
	// (0 = GOMAXPROCS).
	batchWorkers int
	// nilPrior, when positive, makes /v1/link NIL-aware.
	nilPrior float64
	// logger, when set, records one line per request.
	logger *log.Logger
	// metrics holds every instrument the server and model record.
	metrics *obs.Registry
	// lifecycle holds the request-lifecycle instruments (panics,
	// shedding, cancellations); always non-nil.
	lifecycle *lifecycleMetrics
	// requestTimeout, when positive, bounds each model-serving
	// request.
	requestTimeout time.Duration
	// limiter is the admission semaphore; nil when MaxInFlight is
	// unset.
	limiter *limiter
	// reqSeq issues unique per-request document ids, so concurrent
	// requests never collide in anything keyed by document.
	reqSeq atomic.Uint64
	// ready gates GET /v1/readyz; see SetReady.
	ready atomic.Bool
}

// Options configures the server.
type Options struct {
	// MaxBodyBytes bounds request bodies (default 1 MiB). It does not
	// apply to /v1/link/batch, whose body is a stream bounded per
	// line by MaxLineBytes instead.
	MaxBodyBytes int64
	// MaxLineBytes bounds a single NDJSON line on /v1/link/batch
	// (default 256 KiB). An oversized first line is answered 413; an
	// oversized later line becomes a per-line error record in the
	// output stream.
	MaxLineBytes int64
	// BatchWorkers is the worker-pool width /v1/link/batch pipelines
	// documents through (0 = GOMAXPROCS). Batch memory is
	// O(BatchWorkers), never O(documents).
	BatchWorkers int
	// NILPrior, when positive, enables NIL detection on /v1/link with
	// this prior.
	NILPrior float64
	// MinPosterior filters /v1/annotate results.
	MinPosterior float64
	// Logger, when set, logs one line per request (method, path,
	// status, duration).
	Logger *log.Logger
	// EntityType is the type whose names /v1/candidates searches. The
	// zero value uses the type the model's meta-paths start at.
	EntityType hin.TypeID
	// Metrics, when set, receives all request and model
	// instrumentation; when nil the server creates a private registry.
	// Share one registry between training and serving so EM metrics
	// survive into the serving exposition.
	Metrics *obs.Registry
	// NoMetricsEndpoint hides GET /metrics. Instrumentation still
	// runs; the registry stays reachable through Server.Metrics.
	NoMetricsEndpoint bool
	// Pprof mounts the net/http/pprof profiling handlers under
	// /debug/pprof/. Off by default: profiles expose internals, so a
	// deployment opts in explicitly.
	Pprof bool
	// FuzzyDistance, when positive, enables the fuzzy candidate
	// fallback on the model-serving endpoints: mentions whose exact
	// candidate set is empty are retried against the surface-form trie
	// at this edit distance (max surftrie.MaxDistance). It also sets
	// the distance /v1/candidates?fuzzy=1 retrieves at, and is
	// reapplied after every hot swap.
	FuzzyDistance int
	// Precompute eagerly builds the model's frozen entity-mixture
	// index before the server accepts traffic, so no request ever pays
	// meta-path walk latency. Adds startup time proportional to the
	// entity count; off by default.
	Precompute bool
	// RequestTimeout, when positive, is the per-request deadline for
	// the /v1 model-serving endpoints, layered onto whatever deadline
	// the client's own context carries. A request that exceeds it is
	// aborted mid-walk and answered 503 with the timeout in the body.
	RequestTimeout time.Duration
	// MaxInFlight, when positive, caps concurrently executing
	// model-serving requests. Excess requests wait in a bounded queue
	// (MaxQueued deep); beyond that they are shed with 429 and a
	// Retry-After header. 0 means unlimited.
	MaxInFlight int
	// MaxQueued bounds the admission wait queue when MaxInFlight is
	// set; 0 defaults to MaxInFlight. Negative disables queueing
	// entirely (immediate 429 once the limit is reached).
	MaxQueued int
	// SnapshotPath, when set, enables zero-downtime hot swaps: POST
	// /v1/admin/reload (and SIGHUP in the CLI) re-reads this artifact,
	// validates it off the request path and atomically swaps the
	// serving model.
	SnapshotPath string
	// SnapshotInfo identifies the artifact the initial model was
	// loaded from, when it came from one; logged at startup and
	// exposed in the /v1/healthz payload.
	SnapshotInfo *snapshot.Info
	// MaxUpdateBytes bounds a whole POST /v1/admin/update body
	// (default 64 MiB). Individual NDJSON lines are still bounded by
	// MaxLineBytes.
	MaxUpdateBytes int64
}

// buildServing derives one serving generation from a model: the
// ingestion pipeline, the annotator and the loose candidate index.
func buildServing(m *shine.Model, ingestCfg corpus.IngestConfig, entityTypeOpt hin.TypeID, minPosterior float64, snapInfo *snapshot.Info) (*serving, error) {
	ing, err := corpus.NewIngester(m.Graph(), ingestCfg)
	if err != nil {
		return nil, err
	}
	ann, err := annotate.New(m, ingestCfg, annotate.Options{MinPosterior: minPosterior})
	if err != nil {
		return nil, err
	}
	entityType := entityTypeOpt
	if entityType <= 0 {
		paths := m.Paths()
		if len(paths) == 0 {
			return nil, fmt.Errorf("server: model has no meta-paths to infer the entity type from")
		}
		entityType = paths[0].StartType(m.Graph().Schema())
	}
	// The model already carries a frozen trie over its own entity
	// type; only an explicit override to a different type needs a
	// separate index.
	cands := m.CandidateSource()
	if entityType != m.EntityType() {
		trie, err := surftrie.Build(m.Graph(), entityType)
		if err != nil {
			return nil, fmt.Errorf("server: indexing entity names: %w", err)
		}
		cands = trie
	}
	return &serving{model: m, ingester: ing, annotator: ann, cands: cands, snapInfo: snapInfo}, nil
}

// New builds a server over a (typically trained) model.
func New(m *shine.Model, ingestCfg corpus.IngestConfig, opts Options) (*Server, error) {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.MaxLineBytes <= 0 {
		opts.MaxLineBytes = 256 << 10
	}
	if opts.MaxUpdateBytes <= 0 {
		opts.MaxUpdateBytes = 64 << 20
	}
	if opts.BatchWorkers < 0 {
		return nil, fmt.Errorf("server: negative batch workers %d", opts.BatchWorkers)
	}
	// The explicit NaN test matters: NaN < 0 and NaN >= 1 are both
	// false, so a NaN prior would pass the range check, count as "NIL
	// mode on" and poison every posterior downstream.
	if math.IsNaN(opts.NILPrior) || opts.NILPrior < 0 || opts.NILPrior >= 1 {
		return nil, fmt.Errorf("server: NIL prior %v outside [0, 1)", opts.NILPrior)
	}
	if err := m.SetFuzzyDistance(opts.FuzzyDistance); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	sv, err := buildServing(m, ingestCfg, opts.EntityType, opts.MinPosterior, opts.SnapshotInfo)
	if err != nil {
		return nil, err
	}
	if opts.RequestTimeout < 0 {
		return nil, fmt.Errorf("server: negative request timeout %v", opts.RequestTimeout)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		mux:            http.NewServeMux(),
		ingestCfg:      ingestCfg,
		entityTypeOpt:  opts.EntityType,
		minPosterior:   opts.MinPosterior,
		precompute:     opts.Precompute,
		fuzzyDistance:  opts.FuzzyDistance,
		snapshotPath:   opts.SnapshotPath,
		maxBodyBytes:   opts.MaxBodyBytes,
		maxLineBytes:   opts.MaxLineBytes,
		maxUpdateBytes: opts.MaxUpdateBytes,
		batchWorkers:   opts.BatchWorkers,
		nilPrior:       opts.NILPrior,
		logger:         opts.Logger,
		metrics:        reg,
		lifecycle:      newLifecycleMetrics(reg),
		snap:           newSnapshotMetrics(reg),
		delta:          newDeltaMetrics(reg),
		requestTimeout: opts.RequestTimeout,
	}
	s.serving.Store(sv)
	if opts.SnapshotInfo != nil {
		s.snap.bytes.Set(float64(opts.SnapshotInfo.Bytes))
	}
	if opts.MaxInFlight > 0 {
		queued := opts.MaxQueued
		switch {
		case queued == 0:
			queued = opts.MaxInFlight
		case queued < 0:
			queued = 0
		}
		s.limiter = newLimiter(opts.MaxInFlight, queued, s.lifecycle)
	}
	// Instrument the model into the same registry (idempotent if the
	// caller already did); no requests are flowing yet, so this cannot
	// race with Link.
	m.SetMetrics(reg)
	if opts.Precompute {
		if err := m.PrecomputeMixtures(); err != nil {
			return nil, fmt.Errorf("server: precomputing mixtures: %w", err)
		}
	}
	// Model-serving endpoints run under the request lifecycle
	// (deadline + admission control); ops endpoints do not — a load
	// balancer must still reach readiness while requests are shedding.
	s.route(http.MethodPost, "/v1/link", s.guard(s.handleLink))
	s.route(http.MethodPost, "/v1/link/batch", s.guard(s.handleLinkBatch))
	s.route(http.MethodPost, "/v1/annotate", s.guard(s.handleAnnotate))
	s.route(http.MethodPost, "/v1/explain", s.guard(s.handleExplain))
	s.route(http.MethodGet, "/v1/candidates", s.guard(s.handleCandidates))
	s.route(http.MethodGet, "/v1/entity", s.guard(s.handleEntity))
	s.route(http.MethodGet, "/v1/healthz", s.handleHealthz)
	s.route(http.MethodGet, "/v1/readyz", s.handleReadyz)
	// Admin endpoints are ops-plane like healthz: not guarded, so a
	// reload cannot be shed by the very overload it might relieve.
	s.route(http.MethodPost, "/v1/admin/reload", s.handleReload)
	s.route(http.MethodPost, "/v1/admin/update", s.handleUpdate)
	if !opts.NoMetricsEndpoint {
		s.route(http.MethodGet, "/metrics", reg.Handler().ServeHTTP)
	}
	if opts.Pprof {
		// Explicit handlers on our mux — importing net/http/pprof
		// also touches http.DefaultServeMux, which we never serve.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Construction (including any eager precompute above) is done;
	// the server can take traffic. Deployments flip this off around
	// Rebind/SetGeneric maintenance via SetReady.
	s.SetReady(true)
	return s, nil
}

// Metrics returns the server's registry — the place to scrape or to
// record deployment-specific metrics alongside the server's own.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// route mounts a handler that accepts exactly one method, wrapped in
// the per-endpoint instrumentation middleware (so rejected methods
// are counted too).
func (s *Server) route(method, path string, h http.HandlerFunc) {
	enforced := func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			httpError(w, http.StatusMethodNotAllowed, method+" required")
			return
		}
		h(w, r)
	}
	s.mux.Handle(path, s.metrics.Middleware(path, http.HandlerFunc(enforced)))
}

// ServeHTTP implements http.Handler. Every request — routed or not —
// runs under the panic-recovery middleware, and one line is logged
// per request when a logger is configured.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.serveRecovered(sw, r)
	if s.logger != nil {
		s.logger.Printf("%s %s %d %v", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
	}
}

// serveRecovered dispatches to the mux with panic recovery installed,
// so the request log line above still fires for a panicked request.
func (s *Server) serveRecovered(sw *statusWriter, r *http.Request) {
	defer s.recoverPanic(sw, r)
	s.mux.ServeHTTP(sw, r)
}

// statusWriter records the response status for logging and whether
// the response has started — the fact panic recovery needs to decide
// between sending a 500 and staying silent.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote = true
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the wrapped writer to http.ResponseController, so
// streaming handlers (/v1/link/batch) can flush per line and enable
// full-duplex mode through the logging/recovery wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// linkRequest is the body of /v1/link and /v1/explain.
type linkRequest struct {
	// Mention is the surface form to resolve.
	Mention string `json:"mention"`
	// Text is the document context containing the mention.
	Text string `json:"text"`
}

// candidateJSON is one scored candidate; a null entity is NIL.
type candidateJSON struct {
	Entity    *int32  `json:"entity"`
	Name      string  `json:"name,omitempty"`
	Posterior float64 `json:"posterior"`
}

// linkResponse is the body returned by /v1/link.
type linkResponse struct {
	Entity     *int32          `json:"entity"`
	Name       string          `json:"name,omitempty"`
	Candidates []candidateJSON `json:"candidates"`
}

func (s *Server) handleLink(w http.ResponseWriter, r *http.Request) {
	var req linkRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Mention == "" {
		httpError(w, http.StatusBadRequest, "mention is required")
		return
	}
	// A nil_prior query parameter overrides the server-wide NIL prior
	// for this request: 0 disables NIL mode, (0, 1) enables it at that
	// mass. Rejected unless it parses to a float in [0, 1) — NaN in
	// particular parses successfully and must answer 400, not seep
	// into the model (the model's own guard would also refuse it, but
	// as a 500).
	nilPrior := s.nilPrior
	if qp := r.URL.Query().Get("nil_prior"); qp != "" {
		v, err := strconv.ParseFloat(qp, 64)
		if err != nil || math.IsNaN(v) || v < 0 || v >= 1 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("nil_prior %q outside [0, 1)", qp))
			return
		}
		nilPrior = v
	}
	sv := s.serving.Load()
	doc := sv.ingester.Ingest(s.nextRequestID(), req.Mention, hin.NoObject, req.Text)

	ctx := r.Context()
	var res shine.Result
	var err error
	if nilPrior > 0 {
		res, err = sv.model.LinkNILContext(ctx, doc, nilPrior)
	} else {
		res, err = sv.model.LinkContext(ctx, doc)
	}
	if err != nil {
		if isCtxError(err) {
			s.respondCtxError(w, err)
			return
		}
		if errors.Is(err, shine.ErrNoCandidates) {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := linkResponse{Entity: entityID(res.Entity), Name: entityName(sv, res.Entity)}
	for _, cs := range res.Candidates {
		resp.Candidates = append(resp.Candidates, candidateJSON{
			Entity:    entityID(cs.Entity),
			Name:      entityName(sv, cs.Entity),
			Posterior: cs.Posterior,
		})
	}
	s.writeJSON(w, resp)
}

// annotateRequest is the body of /v1/annotate.
type annotateRequest struct {
	Text string `json:"text"`
}

type annotationJSON struct {
	Start      int     `json:"start"`
	End        int     `json:"end"`
	Surface    string  `json:"surface"`
	Entity     int32   `json:"entity"`
	Name       string  `json:"name"`
	Posterior  float64 `json:"posterior"`
	Candidates int     `json:"candidates"`
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req annotateRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Text == "" {
		httpError(w, http.StatusBadRequest, "text is required")
		return
	}
	anns, err := s.serving.Load().annotator.AnnotateContext(r.Context(), s.nextRequestID(), req.Text)
	if err != nil {
		if isCtxError(err) {
			s.respondCtxError(w, err)
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	out := make([]annotationJSON, 0, len(anns))
	for _, an := range anns {
		out = append(out, annotationJSON{
			Start: an.Start, End: an.End, Surface: an.Surface,
			Entity: int32(an.Entity), Name: an.EntityName,
			Posterior: an.Posterior, Candidates: an.Candidates,
		})
	}
	s.writeJSON(w, struct {
		Annotations []annotationJSON `json:"annotations"`
	}{out})
}

// explainResponse is the body of /v1/explain.
type explainResponse struct {
	Entity            *int32               `json:"entity"`
	Name              string               `json:"name,omitempty"`
	RunnerUp          *int32               `json:"runnerUp"`
	Margin            float64              `json:"margin"`
	PopularityLogOdds float64              `json:"popularityLogOdds"`
	Objects           []objectContribution `json:"objects"`
}

type objectContribution struct {
	Name    string  `json:"name"`
	Type    string  `json:"type"`
	Count   int     `json:"count"`
	LogOdds float64 `json:"logOdds"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req linkRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Mention == "" {
		httpError(w, http.StatusBadRequest, "mention is required")
		return
	}
	sv := s.serving.Load()
	doc := sv.ingester.Ingest(s.nextRequestID(), req.Mention, hin.NoObject, req.Text)
	ex, err := sv.model.ExplainContext(r.Context(), doc)
	if err != nil {
		if isCtxError(err) {
			s.respondCtxError(w, err)
			return
		}
		if errors.Is(err, shine.ErrNoCandidates) {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := explainResponse{
		Entity:            entityID(ex.Entity),
		Name:              entityName(sv, ex.Entity),
		RunnerUp:          entityID(ex.RunnerUp),
		Margin:            ex.Margin,
		PopularityLogOdds: ex.PopularityLogOdds,
	}
	for _, oc := range ex.Objects {
		resp.Objects = append(resp.Objects, objectContribution{
			Name: oc.Name, Type: oc.Type, Count: oc.Count, LogOdds: oc.LogOdds,
		})
	}
	s.writeJSON(w, resp)
}

// candidatesResponse is the body of /v1/candidates.
type candidatesResponse struct {
	Mention    string           `json:"mention"`
	Loose      bool             `json:"loose"`
	Fuzzy      bool             `json:"fuzzy,omitempty"`
	Candidates []entityResponse `json:"candidates"`
}

func (s *Server) handleCandidates(w http.ResponseWriter, r *http.Request) {
	mention := r.URL.Query().Get("mention")
	if mention == "" {
		httpError(w, http.StatusBadRequest, "mention is required")
		return
	}
	loose := r.URL.Query().Get("loose") == "1"
	fuzzy := r.URL.Query().Get("fuzzy") == "1"
	if loose && fuzzy {
		httpError(w, http.StatusBadRequest, "loose and fuzzy are mutually exclusive")
		return
	}
	sv := s.serving.Load()
	var cands []hin.ObjectID
	switch {
	case fuzzy:
		fz, ok := sv.cands.(shine.FuzzyCandidateSource)
		if !ok {
			httpError(w, http.StatusBadRequest, "candidate source does not support fuzzy retrieval")
			return
		}
		dist := s.fuzzyDistance
		if dist <= 0 {
			dist = surftrie.MaxDistance
		}
		cands = fz.FuzzyCandidates(mention, dist)
	case loose:
		cands = sv.cands.LooseCandidates(mention)
	default:
		cands = sv.cands.Candidates(mention)
	}
	g := sv.model.Graph()
	resp := candidatesResponse{Mention: mention, Loose: loose, Fuzzy: fuzzy, Candidates: []entityResponse{}}
	for _, e := range cands {
		resp.Candidates = append(resp.Candidates, entityResponse{
			Entity:     int32(e),
			Name:       g.Name(e),
			Type:       g.Schema().Type(g.TypeOf(e)).Name,
			Popularity: sv.model.Popularity(e),
		})
	}
	s.writeJSON(w, resp)
}

// entityResponse is the body of /v1/entity.
type entityResponse struct {
	Entity     int32   `json:"entity"`
	Name       string  `json:"name"`
	Type       string  `json:"type"`
	Popularity float64 `json:"popularity"`
}

func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	// strconv, not Sscanf: Sscanf("%d") accepts trailing garbage
	// ("12abc") and silently wraps out-of-range values.
	id64, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, "id must be a 32-bit integer")
		return
	}
	id := int32(id64)
	sv := s.serving.Load()
	g := sv.model.Graph()
	if id < 0 || int(id) >= g.NumObjects() {
		httpError(w, http.StatusNotFound, "no such object")
		return
	}
	obj := hin.ObjectID(id)
	s.writeJSON(w, entityResponse{
		Entity:     id,
		Name:       g.Name(obj),
		Type:       g.Schema().Type(g.TypeOf(obj)).Name,
		Popularity: sv.model.Popularity(obj),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sv := s.serving.Load()
	s.writeJSON(w, struct {
		Status   string         `json:"status"`
		Objects  int            `json:"objects"`
		Snapshot *snapshot.Info `json:"snapshot,omitempty"`
	}{"ok", sv.model.Graph().NumObjects(), sv.snapInfo})
}

// ---------------------------------------------------------------- helpers

// nextRequestID issues a process-unique document id for one request,
// so concurrent requests never share an id in anything keyed by
// document (caches, logs, annotation ids).
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("req-%d", s.reqSeq.Add(1))
}

// readJSON decodes a POST body, writing the error response itself on
// failure: 413 when the body exceeds MaxBodyBytes, 400 for malformed
// JSON. Method enforcement happens in route, before any handler runs.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

// entityID renders an entity as a nullable JSON id (NIL -> null).
func entityID(e hin.ObjectID) *int32 {
	if e == hin.NoObject {
		return nil
	}
	id := int32(e)
	return &id
}

func entityName(sv *serving, e hin.ObjectID) string {
	if e == hin.NoObject {
		return ""
	}
	return sv.model.Graph().Name(e)
}

func (s *Server) writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	writeBody(w, v, s.logger)
}

// writeBody encodes v after headers are (implicitly) sent. An encode
// failure at this point cannot change the status line — http.Error
// here would corrupt the already-started response — so it is logged
// instead.
func writeBody(w http.ResponseWriter, v interface{}, logger *log.Logger) {
	if err := json.NewEncoder(w).Encode(v); err != nil && logger != nil {
		logger.Printf("encoding response body: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}
