package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestCandidatesFuzzyEndpoint: /v1/candidates?fuzzy=1 serves the
// edit-distance block for noisy mentions, is mutually exclusive with
// loose=1, and reports itself in the response.
func TestCandidatesFuzzyEndpoint(t *testing.T) {
	s, _ := testServer(t, Options{FuzzyDistance: 1})
	get := func(q string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, q, nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		return w
	}
	// "Wei Wing" is one edit from "Wei Wang": invisible to the strict
	// rules, found by the fuzzy walk.
	w := get("/v1/candidates?mention=Wei+Wing")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp candidatesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 0 {
		t.Errorf("strict lookup of a noisy mention found %+v", resp.Candidates)
	}
	w = get("/v1/candidates?mention=Wei+Wing&fuzzy=1")
	if w.Code != http.StatusOK {
		t.Fatalf("fuzzy status %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 2 || !resp.Fuzzy {
		t.Errorf("fuzzy candidates = %+v", resp)
	}
	if w := get("/v1/candidates?mention=Wei+Wing&loose=1&fuzzy=1"); w.Code != http.StatusBadRequest {
		t.Errorf("loose+fuzzy: status %d, want 400", w.Code)
	}
}

// TestCandidatesFuzzyDefaultDistance: with no -fuzzy flag the endpoint
// still answers fuzzy=1 queries at the maximum supported distance —
// the flag only changes the implicit serving-path fallback.
func TestCandidatesFuzzyDefaultDistance(t *testing.T) {
	s, _ := testServer(t, Options{})
	req := httptest.NewRequest(http.MethodGet, "/v1/candidates?mention=Wei+Wnng&fuzzy=1", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp candidatesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 2 {
		t.Errorf("fuzzy candidates = %+v", resp)
	}
}
