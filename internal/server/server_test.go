package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/shine"
)

// testServer builds a server over the two-Wangs scenario.
func testServer(t testing.TB, opts Options) (*Server, map[string]hin.ObjectID) {
	t.Helper()
	m, cfg, ids := testModel(t)
	s, err := New(m, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, ids
}

// testModel builds the two-Wangs model and ingestion config without a
// server, for tests that exercise New's option validation directly.
func testModel(t testing.TB) (*shine.Model, corpus.IngestConfig, map[string]hin.ObjectID) {
	t.Helper()
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	ids := map[string]hin.ObjectID{
		"w1":     b.MustAddObject(d.Author, "Wei Wang 0001"),
		"w2":     b.MustAddObject(d.Author, "Wei Wang 0002"),
		"muntz":  b.MustAddObject(d.Author, "Richard R. Muntz"),
		"sigmod": b.MustAddObject(d.Venue, "SIGMOD"),
		"nips":   b.MustAddObject(d.Venue, "NIPS"),
		"data":   b.MustAddObject(d.Term, "data"),
		"neural": b.MustAddObject(d.Term, "neural"),
	}
	for i := 0; i < 4; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("w1p%d", i))
		b.MustAddLink(d.Write, ids["w1"], p)
		b.MustAddLink(d.Write, ids["muntz"], p)
		b.MustAddLink(d.Publish, ids["sigmod"], p)
		b.MustAddLink(d.Contain, p, ids["data"])
	}
	p := b.MustAddObject(d.Paper, "w2p0")
	b.MustAddLink(d.Write, ids["w2"], p)
	b.MustAddLink(d.Publish, ids["nips"], p)
	b.MustAddLink(d.Contain, p, ids["neural"])
	g := b.Build()

	c := &corpus.Corpus{}
	c.Add(corpus.NewDocument("s1", "Wei Wang", ids["w1"],
		[]hin.ObjectID{ids["muntz"], ids["sigmod"], ids["data"]}))
	c.Add(corpus.NewDocument("s2", "Wei Wang", ids["w2"],
		[]hin.ObjectID{ids["nips"], ids["neural"]}))
	m, err := shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, shine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, corpus.DBLPIngestConfig(d), ids
}

func postJSON(t testing.TB, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestLinkEndpoint(t *testing.T) {
	s, ids := testServer(t, Options{})
	w := postJSON(t, s, "/v1/link",
		`{"mention": "Wei Wang", "text": "Wei Wang works on data at SIGMOD with Richard R. Muntz"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Entity     *int32 `json:"entity"`
		Name       string `json:"name"`
		Candidates []struct {
			Posterior float64 `json:"posterior"`
		} `json:"candidates"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if resp.Entity == nil || hin.ObjectID(*resp.Entity) != ids["w1"] {
		t.Errorf("linked to %v (%s), want w1", resp.Entity, resp.Name)
	}
	if len(resp.Candidates) != 2 {
		t.Errorf("candidates = %d", len(resp.Candidates))
	}
	sum := 0.0
	for _, c := range resp.Candidates {
		sum += c.Posterior
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("posteriors sum to %v", sum)
	}
}

func TestLinkEndpointErrors(t *testing.T) {
	s, _ := testServer(t, Options{})
	if w := postJSON(t, s, "/v1/link", `{"text": "no mention"}`); w.Code != http.StatusBadRequest {
		t.Errorf("missing mention: status %d", w.Code)
	}
	if w := postJSON(t, s, "/v1/link", `{"mention": "Nobody Known", "text": "x"}`); w.Code != http.StatusNotFound {
		t.Errorf("unknown mention: status %d", w.Code)
	}
	if w := postJSON(t, s, "/v1/link", `{bad json`); w.Code != http.StatusBadRequest {
		t.Errorf("bad json: status %d", w.Code)
	}
	if w := postJSON(t, s, "/v1/link", `{"mention": "x", "unknownField": 1}`); w.Code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/link", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET on link: status %d", w.Code)
	}
}

func TestLinkEndpointNILMode(t *testing.T) {
	s, _ := testServer(t, Options{NILPrior: 0.3})
	// A mention known to the network but with foreign context may NIL;
	// the essential contract is that the NIL candidate (null entity)
	// appears in the response.
	w := postJSON(t, s, "/v1/link", `{"mention": "Wei Wang", "text": ""}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Candidates []struct {
			Entity *int32 `json:"entity"`
		} `json:"candidates"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	hasNIL := false
	for _, c := range resp.Candidates {
		if c.Entity == nil {
			hasNIL = true
		}
	}
	if !hasNIL {
		t.Error("NIL pseudo-candidate missing in NIL mode")
	}
}

func TestAnnotateEndpoint(t *testing.T) {
	s, _ := testServer(t, Options{})
	w := postJSON(t, s, "/v1/annotate",
		`{"text": "Wei Wang collaborates with Richard R. Muntz on data at SIGMOD."}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Annotations []annotationJSON `json:"annotations"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Annotations) != 2 {
		t.Fatalf("got %d annotations: %+v", len(resp.Annotations), resp.Annotations)
	}
	if w := postJSON(t, s, "/v1/annotate", `{}`); w.Code != http.StatusBadRequest {
		t.Errorf("empty text: status %d", w.Code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, _ := testServer(t, Options{})
	w := postJSON(t, s, "/v1/explain",
		`{"mention": "Wei Wang", "text": "Wei Wang works on data at SIGMOD"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp explainResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Entity == nil || resp.RunnerUp == nil {
		t.Fatalf("explanation incomplete: %+v", resp)
	}
	if resp.Margin <= 0 || len(resp.Objects) == 0 {
		t.Errorf("explanation = %+v", resp)
	}
}

func TestEntityEndpoint(t *testing.T) {
	s, ids := testServer(t, Options{})
	req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/entity?id=%d", ids["w1"]), nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var resp entityResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Name != "Wei Wang 0001" || resp.Type != "author" || resp.Popularity <= 0 {
		t.Errorf("entity = %+v", resp)
	}
	// Errors.
	for _, q := range []string{"/v1/entity?id=99999", "/v1/entity?id=abc", "/v1/entity"} {
		req := httptest.NewRequest(http.MethodGet, q, nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code == http.StatusOK {
			t.Errorf("%s: status %d, want error", q, w.Code)
		}
	}
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t, Options{})
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Errorf("healthz = %d %s", w.Code, w.Body.String())
	}
}

func TestBodyLimit(t *testing.T) {
	s, _ := testServer(t, Options{MaxBodyBytes: 64})
	big := `{"mention": "Wei Wang", "text": "` + strings.Repeat("x", 1000) + `"}`
	w := postJSON(t, s, "/v1/link", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", w.Code)
	}
	if !strings.Contains(w.Body.String(), "64") {
		t.Errorf("413 body should name the limit: %s", w.Body.String())
	}
}

func TestNewValidation(t *testing.T) {
	s, _ := testServer(t, Options{})
	_ = s
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	b.MustAddObject(d.Author, "Solo")
	g := b.Build()
	c := &corpus.Corpus{}
	c.Add(corpus.NewDocument("x", "Solo", hin.NoObject, []hin.ObjectID{0}))
	m, err := shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, shine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, corpus.DBLPIngestConfig(d), Options{NILPrior: 1}); err == nil {
		t.Error("NIL prior 1 accepted")
	}
}

func TestCandidatesEndpoint(t *testing.T) {
	s, _ := testServer(t, Options{})
	get := func(q string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, q, nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		return w
	}
	w := get("/v1/candidates?mention=Wei+Wang")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp candidatesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 2 || resp.Loose {
		t.Errorf("strict candidates = %+v", resp)
	}
	// Loose first-initial search.
	w = get("/v1/candidates?mention=W.+Wang&loose=1")
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 2 || !resp.Loose {
		t.Errorf("loose candidates = %+v", resp)
	}
	// Errors.
	if w := get("/v1/candidates"); w.Code != http.StatusBadRequest {
		t.Errorf("missing mention: status %d", w.Code)
	}
	// Unknown mention: empty list, not an error.
	w = get("/v1/candidates?mention=Nobody+Here")
	if w.Code != http.StatusOK {
		t.Fatalf("unknown mention status %d", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 0 {
		t.Errorf("unknown mention candidates = %+v", resp.Candidates)
	}
}

func TestRequestLogging(t *testing.T) {
	var logBuf strings.Builder
	s, _ := testServer(t, Options{Logger: log.New(&logBuf, "", 0)})
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if !strings.Contains(logBuf.String(), "GET /v1/healthz 200") {
		t.Errorf("log = %q", logBuf.String())
	}
	// Error statuses are logged too.
	logBuf.Reset()
	req = httptest.NewRequest(http.MethodGet, "/v1/entity?id=abc", nil)
	s.ServeHTTP(httptest.NewRecorder(), req)
	if !strings.Contains(logBuf.String(), "400") {
		t.Errorf("error log = %q", logBuf.String())
	}
}

// TestLinkEndpointNILPriorQueryParam covers the per-request nil_prior
// override: valid values switch the request into NIL mode, and
// non-finite or out-of-range values — NaN in particular, which slips
// through plain range comparisons — answer 400 instead of NaN-scored
// JSON.
func TestLinkEndpointNILPriorQueryParam(t *testing.T) {
	s, _ := testServer(t, Options{}) // server default: NIL mode off

	// A valid override turns NIL mode on for this request only.
	w := postJSON(t, s, "/v1/link?nil_prior=0.3", `{"mention": "Wei Wang", "text": ""}`)
	if w.Code != http.StatusOK {
		t.Fatalf("nil_prior=0.3: status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Candidates []struct {
			Entity *int32 `json:"entity"`
		} `json:"candidates"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	hasNIL := false
	for _, c := range resp.Candidates {
		if c.Entity == nil {
			hasNIL = true
		}
	}
	if !hasNIL {
		t.Error("nil_prior=0.3: NIL pseudo-candidate missing")
	}

	// The server default is untouched by the per-request override.
	w = postJSON(t, s, "/v1/link", `{"mention": "Wei Wang", "text": ""}`)
	if w.Code != http.StatusOK {
		t.Fatalf("follow-up without nil_prior: status %d", w.Code)
	}

	// Regression: NaN, Inf and out-of-range priors are rejected with
	// 400 before reaching the model.
	for _, bad := range []string{"NaN", "nan", "+Inf", "-Inf", "1", "1.5", "-0.1", "bogus"} {
		w := postJSON(t, s, "/v1/link?nil_prior="+bad, `{"mention": "Wei Wang", "text": ""}`)
		if w.Code != http.StatusBadRequest {
			t.Errorf("nil_prior=%s: status %d, want 400 (body %q)", bad, w.Code, w.Body.String())
		}
	}
}
