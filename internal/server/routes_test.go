package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestMetricsLifecycleSeries: the request-lifecycle series all appear
// in the Prometheus exposition from the first scrape, whether or not
// the corresponding option is enabled — dashboards and alerts must
// not silently reference a series that only exists after the first
// panic or shed.
func TestMetricsLifecycleSeries(t *testing.T) {
	s, _ := testServer(t, Options{})
	// One link so the walker series have been collected at least once.
	postJSON(t, s, "/v1/link",
		`{"mention": "Wei Wang", "text": "Wei Wang works on data at SIGMOD"}`)
	w := do(s, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	body := w.Body.String()
	for _, series := range []string{
		MetricPanics,
		MetricRequestsShed,
		MetricRequestsCanceled,
		MetricRequestsInFlight,
		MetricRequestsQueued,
		MetricReady,
		"shine_walker_walks_total",
		"shine_walker_walk_hops_total",
		"shine_walker_walks_canceled_total",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	if !strings.Contains(body, MetricReady+" 1") {
		t.Errorf("%s should read 1 on a fresh server", MetricReady)
	}
}
