// Request-lifecycle middleware: per-request deadlines, admission
// control with a bounded wait queue, panic recovery and readiness.
// The serving path (POST /v1/link and friends) fronts meta-path walk
// work that is expensive under load; this file is what stands between
// a traffic spike and an unbounded pile-up of in-flight walks.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"shine/internal/obs"
)

// Lifecycle metric names. Exported as constants so tests and
// dashboards reference the exact strings the server writes.
const (
	// MetricPanics counts handler panics converted into 500s by the
	// recovery middleware.
	MetricPanics = "shine_panics_total"
	// MetricRequestsShed counts requests rejected with 429 because the
	// in-flight limit and its wait queue were both full.
	MetricRequestsShed = "shine_requests_shed_total"
	// MetricRequestsCanceled counts requests aborted by their own
	// context — client disconnects and RequestTimeout deadlines alike.
	MetricRequestsCanceled = "shine_requests_canceled_total"
	// MetricRequestsInFlight gauges requests currently admitted past
	// the semaphore (0 forever when MaxInFlight is unset).
	MetricRequestsInFlight = "shine_requests_in_flight"
	// MetricRequestsQueued gauges requests waiting for admission.
	MetricRequestsQueued = "shine_requests_queued"
	// MetricReady gauges readiness: 1 when /v1/readyz reports ready.
	MetricReady = "shine_ready"
)

// StatusClientClosedRequest is the non-standard status written when
// the client abandons a request before a response exists (nginx's
// 499). The client never sees it; it exists so logs and the 4xx/5xx
// counters classify disconnects apart from server faults.
const StatusClientClosedRequest = 499

// lifecycleMetrics bundles the request-lifecycle instruments. All are
// created at New so every series appears in the exposition from the
// first scrape, whether or not the corresponding option is enabled.
type lifecycleMetrics struct {
	panics   *obs.Counter
	shed     *obs.Counter
	canceled *obs.Counter
	inFlight *obs.Gauge
	queued   *obs.Gauge
	ready    *obs.Gauge
}

func newLifecycleMetrics(reg *obs.Registry) *lifecycleMetrics {
	return &lifecycleMetrics{
		panics:   reg.Counter(MetricPanics),
		shed:     reg.Counter(MetricRequestsShed),
		canceled: reg.Counter(MetricRequestsCanceled),
		inFlight: reg.Gauge(MetricRequestsInFlight),
		queued:   reg.Gauge(MetricRequestsQueued),
		ready:    reg.Gauge(MetricReady),
	}
}

// admission is the outcome of limiter.acquire.
type admission int

const (
	// admitOK means the request holds a semaphore slot; the caller
	// must release it.
	admitOK admission = iota
	// admitShed means the limit and the wait queue were both full.
	admitShed
	// admitCanceled means the request's context ended while queued.
	admitCanceled
)

// limiter is the admission semaphore: at most cap(sem) requests
// execute concurrently, at most maxQueue more wait for a slot, and
// everything beyond that is shed immediately. Waiting requests leave
// the queue when their context ends, so a timed-out client never
// occupies a queue slot it can no longer use.
type limiter struct {
	sem      chan struct{}
	queued   atomic.Int64
	maxQueue int64
	metrics  *lifecycleMetrics
}

func newLimiter(maxInFlight, maxQueued int, lm *lifecycleMetrics) *limiter {
	return &limiter{
		sem:      make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueued),
		metrics:  lm,
	}
}

// acquire admits the request, queues it, or sheds it. On admitOK the
// caller must call release exactly once.
func (l *limiter) acquire(ctx context.Context) admission {
	select {
	case l.sem <- struct{}{}:
		l.metrics.inFlight.Add(1)
		return admitOK
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		return admitShed
	}
	l.metrics.queued.Add(1)
	defer func() {
		l.queued.Add(-1)
		l.metrics.queued.Add(-1)
	}()
	select {
	case l.sem <- struct{}{}:
		l.metrics.inFlight.Add(1)
		return admitOK
	case <-ctx.Done():
		return admitCanceled
	}
}

func (l *limiter) release() {
	l.metrics.inFlight.Add(-1)
	<-l.sem
}

// guard wraps a model-serving handler with the request lifecycle:
// the per-request deadline (RequestTimeout layered onto whatever
// deadline the client's own context already carries) and admission
// control. Ops endpoints (healthz, readyz, metrics, pprof) are not
// guarded — shedding a readiness probe under load would turn
// overload into an outage.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.requestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if s.limiter != nil {
			switch s.limiter.acquire(r.Context()) {
			case admitShed:
				s.lifecycle.shed.Inc()
				// One deadline's worth of backoff is the soonest a
				// retry could plausibly find a free slot.
				w.Header().Set("Retry-After", retryAfterSeconds(s.requestTimeout))
				httpError(w, http.StatusTooManyRequests, "server at capacity; retry later")
				return
			case admitCanceled:
				s.respondCtxError(w, r.Context().Err())
				return
			}
			defer s.limiter.release()
		}
		h(w, r)
	}
}

// retryAfterSeconds renders a Retry-After value: the request timeout
// rounded up to a whole second, floored at 1.
func retryAfterSeconds(timeout time.Duration) string {
	secs := int(timeout / time.Second)
	if timeout%time.Second != 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// isCtxError reports whether err was caused by the request context
// ending (deadline or client disconnect).
func isCtxError(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// respondCtxError converts a context-caused failure into its
// response: 503 with the timeout in the body when the server's
// deadline fired, 499 (client closed request) when the client is
// gone. Both count in shine_requests_canceled_total.
func (s *Server) respondCtxError(w http.ResponseWriter, err error) {
	s.lifecycle.canceled.Inc()
	if errors.Is(err, context.DeadlineExceeded) {
		msg := "request timed out"
		if s.requestTimeout > 0 {
			msg = fmt.Sprintf("request timed out after %v", s.requestTimeout)
		}
		httpError(w, http.StatusServiceUnavailable, msg)
		return
	}
	// The client is no longer listening; the status exists for logs
	// and counters only.
	httpError(w, StatusClientClosedRequest, "client closed request")
}

// SetReady overrides the readiness reported by GET /v1/readyz. New
// returns a ready server; a deployment flips readiness off before
// maintenance that must not race with traffic (Model.Rebind,
// Model.SetGeneric), lets the load balancer drain, and flips it back
// after. Liveness (GET /v1/healthz) is unaffected — the process is
// alive either way.
func (s *Server) SetReady(ready bool) {
	s.ready.Store(ready)
	if ready {
		s.lifecycle.ready.Set(1)
	} else {
		s.lifecycle.ready.Set(0)
	}
}

// Ready reports the current readiness state.
func (s *Server) Ready() bool { return s.ready.Load() }

// handleReadyz is the readiness probe: 200 when the server should
// receive traffic, 503 while it should be drained. Distinct from
// /v1/healthz (liveness): a not-ready server is healthy — restarting
// it would only lose the warm mixture index.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.serving.Load().model.MixtureStats()
	body := struct {
		Status string `json:"status"`
		// Mixtures is the frozen entity-mixture index occupancy — how
		// much of the serving path is precomputed at the current
		// weight version (reset to 0 by weight installs and rebinds).
		Mixtures int `json:"mixtures"`
	}{"ready", st.Entries}
	if !s.ready.Load() {
		body.Status = "unavailable"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		writeBody(w, body, s.logger)
		return
	}
	s.writeJSON(w, body)
}

// recoverPanic converts a handler panic into a 500 (when no response
// has started), counts it and logs the stack. The process survives:
// one poisoned request must not kill the other ten thousand in
// flight.
func (s *Server) recoverPanic(w *statusWriter, r *http.Request) {
	p := recover()
	if p == nil {
		return
	}
	// http.ErrAbortHandler is net/http's sanctioned way to abort a
	// response; re-panic so the server handles it as designed.
	if err, ok := p.(error); ok && errors.Is(err, http.ErrAbortHandler) {
		panic(p)
	}
	s.lifecycle.panics.Inc()
	if s.logger != nil {
		s.logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
	}
	if !w.wrote {
		httpError(w, http.StatusInternalServerError, "internal server error")
	}
}
