package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"shine/internal/snapshot"
)

// writeTestSnapshot persists the two-Wangs model as an artifact and
// returns its path and info.
func writeTestSnapshot(t testing.TB) (string, snapshot.Info) {
	t.Helper()
	m, _, _ := testModel(t)
	if err := m.PrecomputeMixtures(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.snap")
	info, err := snapshot.WriteFile(path, m.Parts())
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path, info
}

func TestReloadSwapsServing(t *testing.T) {
	path, info := writeTestSnapshot(t)
	s, _ := testServer(t, Options{SnapshotPath: path})

	w := postJSON(t, s, "/v1/admin/reload", "")
	if w.Code != http.StatusOK {
		t.Fatalf("reload: status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Status   string        `json:"status"`
		Snapshot snapshot.Info `json:"snapshot"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding reload response: %v", err)
	}
	if resp.Status != "reloaded" || resp.Snapshot.Checksum != info.Checksum {
		t.Errorf("reload response %+v, want checksum %s", resp, info.Checksum)
	}

	// The swapped-in generation serves requests.
	if w := postJSON(t, s, "/v1/link",
		`{"mention": "Wei Wang", "text": "data at SIGMOD with Richard R. Muntz"}`); w.Code != http.StatusOK {
		t.Errorf("link after reload: status %d: %s", w.Code, w.Body.String())
	}

	// healthz reports the new generation's artifact identity.
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	hw := httptest.NewRecorder()
	s.ServeHTTP(hw, req)
	var health struct {
		Snapshot *snapshot.Info `json:"snapshot"`
	}
	if err := json.Unmarshal(hw.Body.Bytes(), &health); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	if health.Snapshot == nil || health.Snapshot.Checksum != info.Checksum {
		t.Errorf("healthz snapshot = %+v, want checksum %s", health.Snapshot, info.Checksum)
	}

	if got := s.snap.swaps.Value(); got != 1 {
		t.Errorf("swap counter = %v, want 1", got)
	}
	if s.snap.loadSeconds.Value() <= 0 {
		t.Error("load seconds gauge not set")
	}
	if got := s.snap.bytes.Value(); got != float64(info.Bytes) {
		t.Errorf("bytes gauge = %v, want %d", got, info.Bytes)
	}

	// The old generation's collectors must be gone: each model metric
	// name appears at most once in the exposition.
	mw := httptest.NewRecorder()
	s.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := mw.Body.String()
	for _, name := range []string{"shine_mixture_entries", "shine_link_total"} {
		if n := strings.Count(body, "\n"+name+" "); n > 1 {
			t.Errorf("metric %s exposed %d times after swap — stale collectors", name, n)
		}
	}
}

// TestReloadUnderLoad is the zero-downtime acceptance check: repeated
// hot swaps while /v1/link traffic is in flight must never produce a
// swap-attributable 5xx.
func TestReloadUnderLoad(t *testing.T) {
	path, _ := writeTestSnapshot(t)
	s, _ := testServer(t, Options{SnapshotPath: path})

	const workers = 8
	stop := make(chan struct{})
	type badResp struct {
		code int
		body string
	}
	bad := make(chan badResp, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := postJSON(t, s, "/v1/link",
					`{"mention": "Wei Wang", "text": "neural work at NIPS"}`)
				if w.Code >= 500 {
					select {
					case bad <- badResp{w.Code, w.Body.String()}:
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Reload(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case b := <-bad:
		t.Fatalf("5xx during hot swap: %d %s", b.code, b.body)
	default:
	}
	if got := s.snap.swaps.Value(); got != 20 {
		t.Errorf("swap counter = %v, want 20", got)
	}
}

// TestReloadFailureLeavesOldServing corrupts the artifact and checks
// the failed swap is observable while the old generation keeps
// serving.
func TestReloadFailureLeavesOldServing(t *testing.T) {
	path, _ := writeTestSnapshot(t)
	s, _ := testServer(t, Options{SnapshotPath: path})

	if err := os.WriteFile(path, []byte("SHINESNP garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, s, "/v1/admin/reload", "")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("corrupt reload: status %d: %s", w.Code, w.Body.String())
	}
	if got := s.snap.failures.Value(); got != 1 {
		t.Errorf("failure counter = %v, want 1", got)
	}
	if got := s.snap.swaps.Value(); got != 0 {
		t.Errorf("swap counter = %v, want 0", got)
	}
	// Old generation still serves, and the server still reports ready.
	if w := postJSON(t, s, "/v1/link",
		`{"mention": "Wei Wang", "text": "data at SIGMOD"}`); w.Code != http.StatusOK {
		t.Errorf("link after failed reload: status %d: %s", w.Code, w.Body.String())
	}
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/readyz", nil))
	if rw.Code != http.StatusOK {
		t.Errorf("readyz after failed reload: status %d", rw.Code)
	}
}

func TestReloadWithoutPath(t *testing.T) {
	s, _ := testServer(t, Options{})
	w := postJSON(t, s, "/v1/admin/reload", "")
	if w.Code != http.StatusInternalServerError {
		t.Errorf("reload with no path: status %d: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "no snapshot path") {
		t.Errorf("reload error body %q", w.Body.String())
	}
}

func TestReloadConflict(t *testing.T) {
	path, _ := writeTestSnapshot(t)
	s, _ := testServer(t, Options{SnapshotPath: path})
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	w := postJSON(t, s, "/v1/admin/reload", "")
	if w.Code != http.StatusConflict {
		t.Errorf("concurrent reload: status %d: %s", w.Code, w.Body.String())
	}
}
