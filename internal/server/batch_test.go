package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"shine/internal/shine"
)

// batchLines are NDJSON result lines plus the optional trailer,
// decoded structurally for assertions.
type decodedBatch struct {
	lines   []batchResultLine
	summary *batchSummary
}

// decodeBatch splits an NDJSON response body into result lines and
// the summary trailer, failing the test on malformed framing.
func decodeBatch(t *testing.T, body string) decodedBatch {
	t.Helper()
	var out decodedBatch
	for _, raw := range strings.Split(strings.TrimSpace(body), "\n") {
		if raw == "" {
			continue
		}
		if strings.Contains(raw, `"summary"`) {
			if out.summary != nil {
				t.Fatalf("two summary trailers in body:\n%s", body)
			}
			var tr struct {
				Summary batchSummary `json:"summary"`
			}
			if err := json.Unmarshal([]byte(raw), &tr); err != nil {
				t.Fatalf("decoding trailer %q: %v", raw, err)
			}
			out.summary = &tr.Summary
			continue
		}
		if out.summary != nil {
			t.Fatalf("result line after the trailer:\n%s", body)
		}
		var line batchResultLine
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			t.Fatalf("decoding line %q: %v", raw, err)
		}
		out.lines = append(out.lines, line)
	}
	return out
}

func TestLinkBatchHappyPath(t *testing.T) {
	s, ids := testServer(t, Options{})
	body := strings.Join([]string{
		`{"id": "a", "mention": "Wei Wang", "text": "Wei Wang works on data at SIGMOD with Richard R. Muntz"}`,
		``, // blank lines are skipped, not answered
		`{"id": "b", "mention": "Wei Wang", "text": "Wei Wang studies neural methods at NIPS"}`,
		`{"mention": "Richard R. Muntz", "text": "systems work"}`,
	}, "\n")
	w := postJSON(t, s, "/v1/link/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	got := decodeBatch(t, w.Body.String())
	if len(got.lines) != 3 {
		t.Fatalf("got %d result lines, want 3:\n%s", len(got.lines), w.Body.String())
	}
	for i, line := range got.lines {
		if line.Seq != i {
			t.Errorf("line %d carries seq %d; results must be in input order", i, line.Seq)
		}
		if line.Error != "" {
			t.Errorf("line %d failed: %s", i, line.Error)
		}
		if line.Entity == nil || line.Posterior <= 0 {
			t.Errorf("line %d incomplete: %+v", i, line)
		}
	}
	if got.lines[0].ID != "a" || got.lines[1].ID != "b" || got.lines[2].ID != "" {
		t.Errorf("caller ids not echoed: %+v", got.lines)
	}
	wantEntities := []int32{int32(ids["w1"]), int32(ids["w2"]), int32(ids["muntz"])}
	for i, want := range wantEntities {
		if got.lines[i].Entity != nil && *got.lines[i].Entity != want {
			t.Errorf("line %d linked to %d (%s), want %d", i, *got.lines[i].Entity, got.lines[i].Name, want)
		}
	}
	if got.summary == nil {
		t.Fatal("summary trailer missing")
	}
	if got.summary.Docs != 3 || got.summary.Failures != 0 {
		t.Errorf("summary = %+v, want 3 docs, 0 failures", got.summary)
	}
	if got.summary.Seconds <= 0 {
		t.Errorf("summary wall time = %v", got.summary.Seconds)
	}
	// The stream metrics flow through the server registry.
	if docs := s.Metrics().Counter(shine.MetricStreamDocs).Value(); docs != 3 {
		t.Errorf("%s = %d, want 3", shine.MetricStreamDocs, docs)
	}
	if inflight := s.Metrics().Gauge(shine.MetricStreamInFlight).Value(); inflight != 0 {
		t.Errorf("%s = %v after completion, want 0", shine.MetricStreamInFlight, inflight)
	}
}

func TestLinkBatchPerLineErrors(t *testing.T) {
	s, _ := testServer(t, Options{})
	body := strings.Join([]string{
		`{"mention": "Wei Wang", "text": "data at SIGMOD"}`,
		`{not json at all`,
		`{"text": "mention missing"}`,
		`{"mention": "Nobody Known", "text": "x"}`,
		`{"mention": "Wei Wang", "text": "neural at NIPS"}`,
	}, "\n")
	w := postJSON(t, s, "/v1/link/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	got := decodeBatch(t, w.Body.String())
	if len(got.lines) != 5 {
		t.Fatalf("got %d result lines, want 5:\n%s", len(got.lines), w.Body.String())
	}
	wantErr := []bool{false, true, true, true, false}
	for i, line := range got.lines {
		if line.Seq != i {
			t.Errorf("line %d carries seq %d", i, line.Seq)
		}
		if (line.Error != "") != wantErr[i] {
			t.Errorf("line %d error = %q, want error=%v", i, line.Error, wantErr[i])
		}
	}
	if !strings.Contains(got.lines[1].Error, "invalid JSON") {
		t.Errorf("parse failure reads %q", got.lines[1].Error)
	}
	if !strings.Contains(got.lines[2].Error, "mention is required") {
		t.Errorf("missing-mention failure reads %q", got.lines[2].Error)
	}
	if got.summary == nil || got.summary.Docs != 5 || got.summary.Failures != 3 {
		t.Errorf("summary = %+v, want 5 docs, 3 failures", got.summary)
	}
}

func TestLinkBatchOversizedFirstLine(t *testing.T) {
	s, _ := testServer(t, Options{MaxLineBytes: 128})
	body := `{"mention": "Wei Wang", "text": "` + strings.Repeat("x", 1024) + `"}`
	w := postJSON(t, s, "/v1/link/batch", body)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized first line: status %d, want 413: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "128") {
		t.Errorf("413 body should name the limit: %s", w.Body.String())
	}
}

func TestLinkBatchOversizedMidStreamResyncs(t *testing.T) {
	s, _ := testServer(t, Options{MaxLineBytes: 256})
	body := strings.Join([]string{
		`{"mention": "Wei Wang", "text": "data at SIGMOD"}`,
		`{"mention": "Wei Wang", "text": "` + strings.Repeat("x", 2048) + `"}`,
		`{"mention": "Wei Wang", "text": "neural at NIPS"}`,
	}, "\n")
	w := postJSON(t, s, "/v1/link/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	got := decodeBatch(t, w.Body.String())
	if len(got.lines) != 3 {
		t.Fatalf("got %d result lines, want 3 (stream must resync past the oversized line):\n%s",
			len(got.lines), w.Body.String())
	}
	if got.lines[0].Error != "" || got.lines[2].Error != "" {
		t.Errorf("good lines around the oversized one failed: %+v", got.lines)
	}
	if !strings.Contains(got.lines[1].Error, "exceeds 256 bytes") {
		t.Errorf("oversized line error reads %q", got.lines[1].Error)
	}
	if got.summary == nil || got.summary.Docs != 3 || got.summary.Failures != 1 {
		t.Errorf("summary = %+v, want 3 docs, 1 failure", got.summary)
	}
}

func TestLinkBatchEmptyBody(t *testing.T) {
	s, _ := testServer(t, Options{})
	for _, body := range []string{"", "\n\n"} {
		w := postJSON(t, s, "/v1/link/batch", body)
		if body == "" {
			if w.Code != http.StatusBadRequest {
				t.Errorf("empty body: status %d, want 400", w.Code)
			}
			continue
		}
		// Blank-only bodies commit a 200 (the first readable line is
		// blank, skipped after the status) and answer with a bare
		// zero-doc trailer.
		if w.Code != http.StatusBadRequest && w.Code != http.StatusOK {
			t.Errorf("blank body: status %d", w.Code)
		}
	}
}

func TestLinkBatchClientGoneBeforeStart(t *testing.T) {
	s, _ := testServer(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := `{"mention": "Wei Wang", "text": "data at SIGMOD"}` + "\n"
	req := httptest.NewRequest(http.MethodPost, "/v1/link/batch", strings.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("canceled client: status %d, want %d: %s", w.Code, StatusClientClosedRequest, w.Body.String())
	}
	if got := s.Metrics().Counter(MetricRequestsCanceled).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricRequestsCanceled, got)
	}
}

// cancelAfterWriter simulates a client that disconnects mid-stream:
// after n successful writes it cancels the request context, as the
// net/http server does when the peer goes away.
type cancelAfterWriter struct {
	*httptest.ResponseRecorder
	n      int
	cancel context.CancelFunc
}

func (cw *cancelAfterWriter) Write(p []byte) (int, error) {
	if cw.n--; cw.n == 0 {
		cw.cancel()
	}
	return cw.ResponseRecorder.Write(p)
}

func TestLinkBatchClientDisconnectMidStream(t *testing.T) {
	s, _ := testServer(t, Options{})
	var lines []string
	for i := 0; i < 50; i++ {
		lines = append(lines, `{"mention": "Wei Wang", "text": "data at SIGMOD"}`)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/link/batch",
		strings.NewReader(strings.Join(lines, "\n"))).WithContext(ctx)
	cw := &cancelAfterWriter{ResponseRecorder: httptest.NewRecorder(), n: 3, cancel: cancel}
	s.ServeHTTP(cw, req)

	// The pipeline stopped: the response carries no trailer (the
	// cut-stream signal) and the cancellation was counted.
	if strings.Contains(cw.Body.String(), `"summary"`) {
		t.Errorf("canceled batch still produced a trailer:\n%s", cw.Body.String())
	}
	got := decodeBatch(t, cw.Body.String())
	if len(got.lines) >= 50 {
		t.Errorf("all %d lines answered despite mid-stream disconnect", len(got.lines))
	}
	if c := s.Metrics().Counter(MetricRequestsCanceled).Value(); c != 1 {
		t.Errorf("%s = %d, want 1", MetricRequestsCanceled, c)
	}
	if inflight := s.Metrics().Gauge(shine.MetricStreamInFlight).Value(); inflight != 0 {
		t.Errorf("%s = %v after disconnect, want 0", shine.MetricStreamInFlight, inflight)
	}
}

func TestLinkBatchMethodNotAllowed(t *testing.T) {
	s, _ := testServer(t, Options{})
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/link/batch", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET on batch: status %d", w.Code)
	}
}

func TestBatchWorkersValidation(t *testing.T) {
	m, cfg, _ := testModel(t)
	if _, err := New(m, cfg, Options{BatchWorkers: -1}); err == nil {
		t.Error("negative BatchWorkers accepted")
	}
}

// FuzzNDJSONLine holds parseBatchLine to its contract: any input
// yields a usable request or an error, never a panic, and a nil error
// implies a non-empty mention.
func FuzzNDJSONLine(f *testing.F) {
	f.Add([]byte(`{"id": "a", "mention": "Wei Wang", "text": "data"}`))
	f.Add([]byte(`{"mention": ""}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"mention": "x"} {"mention": "y"}`))
	f.Add([]byte(`{"unknown": 1, "mention": "x"}`))
	f.Add([]byte("{\"mention\": \"\xff\xfe\"}"))
	f.Fuzz(func(t *testing.T, line []byte) {
		req, err := parseBatchLine(line)
		if err == nil && req.Mention == "" {
			t.Fatalf("accepted %q with empty mention", line)
		}
		if err != nil && strings.Contains(err.Error(), "\n") {
			t.Fatalf("multi-line error %q breaks NDJSON framing", err)
		}
	})
}
