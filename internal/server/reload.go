// Zero-downtime hot swap: POST /v1/admin/reload (or SIGHUP in the
// CLI) re-reads the snapshot artifact, validates and materialises it
// entirely off the request path, and atomically swaps the serving
// generation. In-flight requests finish on the generation they
// started on; a failed load leaves the old generation serving.
package server

import (
	"fmt"
	"net/http"
	"time"

	"shine/internal/obs"
	"shine/internal/snapshot"
)

// Snapshot metric names, all in the shared registry.
const (
	// MetricSnapshotLoadSeconds is the wall time of the last
	// successful artifact load (read + validate + materialise).
	MetricSnapshotLoadSeconds = "shine_snapshot_load_seconds"
	// MetricSnapshotBytes is the size of the currently serving
	// artifact.
	MetricSnapshotBytes = "shine_snapshot_bytes"
	// MetricSnapshotSwaps counts successful hot swaps.
	MetricSnapshotSwaps = "shine_snapshot_swaps_total"
	// MetricSnapshotLoadFailures counts reloads that failed and left
	// the previous generation serving.
	MetricSnapshotLoadFailures = "shine_snapshot_load_failures_total"
)

type snapshotMetrics struct {
	loadSeconds *obs.Gauge
	bytes       *obs.Gauge
	swaps       *obs.Counter
	failures    *obs.Counter
}

func newSnapshotMetrics(reg *obs.Registry) *snapshotMetrics {
	return &snapshotMetrics{
		loadSeconds: reg.Gauge(MetricSnapshotLoadSeconds),
		bytes:       reg.Gauge(MetricSnapshotBytes),
		swaps:       reg.Counter(MetricSnapshotSwaps),
		failures:    reg.Counter(MetricSnapshotLoadFailures),
	}
}

// errReloadInFlight marks a reload rejected because another one is
// already running; handleReload maps it to 409.
var errReloadInFlight = fmt.Errorf("server: a reload is already in flight")

// Reload re-reads the configured snapshot artifact and hot-swaps the
// serving generation. The expensive work — reading, checksumming,
// materialising the model, rebuilding the derived indexes — happens
// before any serving state changes; the swap itself is one atomic
// pointer store bracketed by a readiness flip. On any failure the old
// generation keeps serving untouched and the failure counter
// increments.
func (s *Server) Reload() (snapshot.Info, error) {
	if s.snapshotPath == "" {
		return snapshot.Info{}, fmt.Errorf("server: no snapshot path configured (set Options.SnapshotPath)")
	}
	if !s.reloadMu.TryLock() {
		return snapshot.Info{}, errReloadInFlight
	}
	defer s.reloadMu.Unlock()

	start := time.Now()
	info, sv, err := s.loadGeneration()
	if err != nil {
		s.snap.failures.Inc()
		return snapshot.Info{}, err
	}

	// Swap. Readiness drops for the instant between unregistering the
	// old model's collectors and storing the new generation, so a
	// scraper or balancer probing mid-swap sees a deliberate not-ready
	// rather than a half-wired generation. Requests already admitted
	// keep running on the old generation — its model remains fully
	// functional, only unobserved.
	old := s.serving.Load()
	s.SetReady(false)
	old.model.UnregisterCollectors(s.metrics)
	sv.model.SetMetrics(s.metrics)
	s.serving.Store(sv)
	s.SetReady(true)

	elapsed := time.Since(start).Seconds()
	s.snap.loadSeconds.Set(elapsed)
	s.snap.bytes.Set(float64(info.Bytes))
	s.snap.swaps.Inc()
	if s.logger != nil {
		s.logger.Printf("snapshot reload: swapped in %s (%.3fs)", info, elapsed)
	}
	return info, nil
}

// loadGeneration does everything short of the swap: artifact read,
// model materialisation, optional mixture precompute, derived-index
// rebuild.
func (s *Server) loadGeneration() (snapshot.Info, *serving, error) {
	snap, err := snapshot.ReadFile(s.snapshotPath)
	if err != nil {
		return snapshot.Info{}, nil, fmt.Errorf("server: reading snapshot %s: %w", s.snapshotPath, err)
	}
	m, err := snap.Model()
	if err != nil {
		return snapshot.Info{}, nil, fmt.Errorf("server: materialising snapshot %s: %w", s.snapshotPath, err)
	}
	// FuzzyDistance is an execution knob excluded from artifacts;
	// reapply it so -fuzzy survives the hot swap.
	if err := m.SetFuzzyDistance(s.fuzzyDistance); err != nil {
		return snapshot.Info{}, nil, fmt.Errorf("server: %w", err)
	}
	if s.precompute {
		if err := m.PrecomputeMixtures(); err != nil {
			return snapshot.Info{}, nil, fmt.Errorf("server: precomputing mixtures: %w", err)
		}
	}
	info := snap.Info()
	sv, err := buildServing(m, s.ingestCfg, s.entityTypeOpt, s.minPosterior, &info)
	if err != nil {
		return snapshot.Info{}, nil, err
	}
	return info, sv, nil
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	info, err := s.Reload()
	if err != nil {
		if err == errReloadInFlight {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.writeJSON(w, struct {
		Status   string        `json:"status"`
		Snapshot snapshot.Info `json:"snapshot"`
	}{"reloaded", info})
}
