// Package annotate implements the paper's motivating application of
// Section 1: automatically annotating domain-specific Web text with
// knowledge from the network. It adds the missing front half of the
// pipeline — *detecting* entity mentions in raw text — on top of the
// SHINE linker: every occurrence of a known entity surface form is
// found, linked in the context of the full document, and returned
// with its byte span, entity and posterior, ready to be rendered as
// hyperlinks or knowledge cards ("we could show some related
// knowledge about the author ... after linking it").
package annotate

import (
	"context"
	"fmt"
	"strings"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/shine"
	"shine/internal/textproc"
)

// Annotation is one linked mention within a text.
type Annotation struct {
	// Start and End are byte offsets of the mention in the input.
	Start, End int
	// Surface is the mention text as it appeared.
	Surface string
	// Entity is the linked entity.
	Entity hin.ObjectID
	// EntityName is the entity's (disambiguated) name in the network.
	EntityName string
	// Posterior is the linking confidence P(e|m, d).
	Posterior float64
	// Candidates is the number of entities the surface form could
	// have referred to.
	Candidates int
}

// Annotator detects and links entity mentions in raw text. It is
// immutable after construction and safe for concurrent use if the
// underlying model is.
type Annotator struct {
	model *shine.Model
	ing   *corpus.Ingester
	// mentions maps entity surface forms (disambiguation suffixes
	// stripped) to detection; the payload is unused, matching is all
	// that matters.
	mentions *textproc.Dictionary
	// minPosterior suppresses annotations the model is unsure about.
	minPosterior float64
}

// Options configures an Annotator.
type Options struct {
	// MinPosterior drops annotations whose top posterior is below it;
	// 0 keeps everything.
	MinPosterior float64
}

// New builds an annotator from a linked-up model and the ingestion
// configuration of its network's schema. The mention dictionary is
// built from the names of all entity-type objects.
func New(m *shine.Model, cfg corpus.IngestConfig, opts Options) (*Annotator, error) {
	if opts.MinPosterior < 0 || opts.MinPosterior >= 1 {
		return nil, fmt.Errorf("annotate: MinPosterior %v outside [0, 1)", opts.MinPosterior)
	}
	ing, err := corpus.NewIngester(m.Graph(), cfg)
	if err != nil {
		return nil, err
	}
	dict := textproc.NewDictionary()
	g := m.Graph()
	entityType, err := entityTypeOf(m)
	if err != nil {
		return nil, err
	}
	for _, e := range g.ObjectsOfType(entityType) {
		dict.Add(stripSuffix(g.Name(e)), struct{}{})
	}
	return &Annotator{model: m, ing: ing, mentions: dict, minPosterior: opts.MinPosterior}, nil
}

// entityTypeOf recovers the model's entity type from its meta-path
// set (every path starts at the entity type).
func entityTypeOf(m *shine.Model) (hin.TypeID, error) {
	paths := m.Paths()
	if len(paths) == 0 {
		return hin.NoType, fmt.Errorf("annotate: model has no meta-paths")
	}
	return paths[0].StartType(m.Graph().Schema()), nil
}

func stripSuffix(name string) string {
	fields := strings.Fields(name)
	if n := len(fields); n > 1 {
		allDigits := true
		for _, c := range fields[n-1] {
			if c < '0' || c > '9' {
				allDigits = false
				break
			}
		}
		if allDigits {
			fields = fields[:n-1]
		}
	}
	return strings.Join(fields, " ")
}

// Annotate detects every entity mention in text and links each one
// using the full document as context. Mentions whose best posterior
// falls below MinPosterior are omitted. Annotations are returned in
// text order.
func (a *Annotator) Annotate(id, text string) ([]Annotation, error) {
	return a.AnnotateContext(context.Background(), id, text)
}

// AnnotateContext is Annotate under a request context: cancellation
// is checked before each detected mention and inside each link (see
// Model.LinkContext), so a canceled request aborts after the current
// mention rather than annotating the rest of the text.
func (a *Annotator) AnnotateContext(ctx context.Context, id, text string) ([]Annotation, error) {
	tokens := textproc.Tokenize(text)
	matches := a.mentions.FindAll(tokens)
	if len(matches) == 0 {
		return nil, nil
	}
	g := a.model.Graph()

	var out []Annotation
	for mi, match := range matches {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := tokens[match.TokenStart].Start
		end := tokens[match.TokenEnd-1].End
		surface := text[start:end] // as written, punctuation included
		doc := a.ing.Ingest(fmt.Sprintf("%s#%d", id, mi), surface, hin.NoObject, text)
		res, err := a.model.LinkContext(ctx, doc)
		if err != nil {
			// Surface forms come from entity names, so candidates
			// always exist; any error is a real failure.
			return nil, fmt.Errorf("annotate: linking %q: %w", surface, err)
		}
		best := res.Candidates[0]
		if best.Posterior < a.minPosterior {
			continue
		}
		out = append(out, Annotation{
			Start:      start,
			End:        end,
			Surface:    surface,
			Entity:     res.Entity,
			EntityName: g.Name(res.Entity),
			Posterior:  best.Posterior,
			Candidates: len(res.Candidates),
		})
	}
	return out, nil
}
