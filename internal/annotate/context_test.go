package annotate

import (
	"context"
	"errors"
	"testing"

	"shine/internal/corpus"
)

// TestAnnotateContextPreCanceled: a canceled request aborts before
// the first detected mention is linked.
func TestAnnotateContextPreCanceled(t *testing.T) {
	d, _, _, m := annotateFixture(t)
	a, err := New(m, corpus.DBLPIngestConfig(d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	anns, err := a.AnnotateContext(ctx, "doc", "Wei Wang presented data at SIGMOD with Richard R. Muntz")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AnnotateContext(canceled) err = %v, want context.Canceled", err)
	}
	if anns != nil {
		t.Errorf("canceled annotate returned %d annotations, want none", len(anns))
	}
}

// TestAnnotateContextBackgroundMatchesAnnotate: the context variant
// is a pure pass-through under a live context.
func TestAnnotateContextBackgroundMatchesAnnotate(t *testing.T) {
	d, _, _, m := annotateFixture(t)
	a, err := New(m, corpus.DBLPIngestConfig(d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	text := "Wei Wang presented data at SIGMOD with Richard R. Muntz"
	plain, err := a.Annotate("doc", text)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := a.AnnotateContext(context.Background(), "doc", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(ctxed) {
		t.Fatalf("annotation count: %d vs %d", len(plain), len(ctxed))
	}
	for i := range plain {
		if plain[i] != ctxed[i] {
			t.Errorf("annotation %d: %+v vs %+v", i, plain[i], ctxed[i])
		}
	}
}
