package annotate

import (
	"fmt"
	"strings"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/shine"
)

// annotateFixture: two "Wei Wang"s in different communities plus a
// unique author, so a text can contain both ambiguous and unambiguous
// mentions.
func annotateFixture(t testing.TB) (*hin.DBLPSchema, *hin.Graph, map[string]hin.ObjectID, *shine.Model) {
	t.Helper()
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	ids := map[string]hin.ObjectID{
		"w1":     b.MustAddObject(d.Author, "Wei Wang 0001"),
		"w2":     b.MustAddObject(d.Author, "Wei Wang 0002"),
		"muntz":  b.MustAddObject(d.Author, "Richard R. Muntz"),
		"sigmod": b.MustAddObject(d.Venue, "SIGMOD"),
		"nips":   b.MustAddObject(d.Venue, "NIPS"),
		"data":   b.MustAddObject(d.Term, "data"),
		"neural": b.MustAddObject(d.Term, "neural"),
	}
	for i := 0; i < 4; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("w1p%d", i))
		b.MustAddLink(d.Write, ids["w1"], p)
		b.MustAddLink(d.Write, ids["muntz"], p)
		b.MustAddLink(d.Publish, ids["sigmod"], p)
		b.MustAddLink(d.Contain, p, ids["data"])
	}
	p := b.MustAddObject(d.Paper, "w2p0")
	b.MustAddLink(d.Write, ids["w2"], p)
	b.MustAddLink(d.Publish, ids["nips"], p)
	b.MustAddLink(d.Contain, p, ids["neural"])
	g := b.Build()

	// A seed corpus so the generic model covers the vocabulary.
	c := &corpus.Corpus{}
	c.Add(corpus.NewDocument("seed1", "Wei Wang", ids["w1"],
		[]hin.ObjectID{ids["muntz"], ids["sigmod"], ids["data"]}))
	c.Add(corpus.NewDocument("seed2", "Wei Wang", ids["w2"],
		[]hin.ObjectID{ids["nips"], ids["neural"]}))

	m, err := shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, shine.DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, g, ids, m
}

func TestAnnotateDetectsAndLinks(t *testing.T) {
	d, g, ids, m := annotateFixture(t)
	a, err := New(m, corpus.DBLPIngestConfig(d), Options{})
	if err != nil {
		t.Fatalf("New annotator: %v", err)
	}
	text := "Wei Wang works on data and publishes at SIGMOD with Richard R. Muntz."
	anns, err := a.Annotate("page", text)
	if err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	if len(anns) != 2 {
		t.Fatalf("got %d annotations, want 2 (Wei Wang, Muntz): %+v", len(anns), anns)
	}
	// In text order.
	if anns[0].Surface != "Wei Wang" || anns[1].Surface != "Richard R. Muntz" {
		t.Errorf("surfaces = %q, %q", anns[0].Surface, anns[1].Surface)
	}
	// The SIGMOD/data context resolves Wei Wang to w1.
	if anns[0].Entity != ids["w1"] {
		t.Errorf("Wei Wang linked to %s", g.Name(anns[0].Entity))
	}
	if anns[0].Candidates != 2 || anns[1].Candidates != 1 {
		t.Errorf("candidate counts = %d, %d", anns[0].Candidates, anns[1].Candidates)
	}
	// Offsets slice back to the surface text.
	for _, an := range anns {
		if got := text[an.Start:an.End]; got != an.Surface {
			t.Errorf("span [%d,%d) = %q, want %q", an.Start, an.End, got, an.Surface)
		}
	}
}

func TestAnnotateUsesContextPerDocument(t *testing.T) {
	d, g, ids, m := annotateFixture(t)
	a, err := New(m, corpus.DBLPIngestConfig(d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	anns, err := a.Annotate("page", "Wei Wang studies neural models and publishes at NIPS.")
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 1 {
		t.Fatalf("got %d annotations", len(anns))
	}
	if anns[0].Entity != ids["w2"] {
		t.Errorf("NIPS-context Wei Wang linked to %s, want w2", g.Name(anns[0].Entity))
	}
}

func TestAnnotateNoMentions(t *testing.T) {
	d, _, _, m := annotateFixture(t)
	a, err := New(m, corpus.DBLPIngestConfig(d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	anns, err := a.Annotate("page", "Nothing relevant here at all.")
	if err != nil {
		t.Fatal(err)
	}
	if anns != nil {
		t.Errorf("annotations = %+v, want none", anns)
	}
}

func TestAnnotateMinPosteriorFilters(t *testing.T) {
	d, _, _, m := annotateFixture(t)
	a, err := New(m, corpus.DBLPIngestConfig(d), Options{MinPosterior: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	// An ambiguous mention with almost no context cannot clear a
	// 0.999 bar.
	anns, err := a.Annotate("page", "Wei Wang.")
	if err != nil {
		t.Fatal(err)
	}
	for _, an := range anns {
		if an.Surface == "Wei Wang" {
			t.Errorf("low-confidence annotation survived: %+v", an)
		}
	}
}

func TestAnnotateSuffixedNamesDetectable(t *testing.T) {
	d, _, ids, m := annotateFixture(t)
	a, err := New(m, corpus.DBLPIngestConfig(d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The network stores "Richard R. Muntz" without a suffix and the
	// Wangs with suffixes; both surface families must be detectable
	// by their plain forms.
	anns, err := a.Annotate("page", "Richard R. Muntz and Wei Wang collaborated on data at SIGMOD.")
	if err != nil {
		t.Fatal(err)
	}
	var surfaces []string
	for _, an := range anns {
		surfaces = append(surfaces, an.Surface)
	}
	joined := strings.Join(surfaces, "|")
	if !strings.Contains(joined, "Richard R. Muntz") || !strings.Contains(joined, "Wei Wang") {
		t.Errorf("surfaces = %v", surfaces)
	}
	_ = ids
}

func TestNewAnnotatorValidation(t *testing.T) {
	d, _, _, m := annotateFixture(t)
	if _, err := New(m, corpus.DBLPIngestConfig(d), Options{MinPosterior: 1}); err == nil {
		t.Error("MinPosterior 1 accepted")
	}
	if _, err := New(m, corpus.DBLPIngestConfig(d), Options{MinPosterior: -0.1}); err == nil {
		t.Error("negative MinPosterior accepted")
	}
}
